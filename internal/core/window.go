package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"vpm/internal/dissem"
	"vpm/internal/packet"
	"vpm/internal/quantile"
	"vpm/internal/receipt"
	"vpm/internal/seqdetect"
)

// ErrEvictedEpoch reports receipts arriving for an epoch the window
// already garbage-collected — in an honest pipeline a lifecycle
// violation, under attack the signature of a very stale replay.
var ErrEvictedEpoch = errors.New("core: epoch already evicted")

// StaleSealError reports a bundle arriving for a (HOP, epoch) that HOP
// already sealed: the publisher promised no further receipts for the
// interval, so a second bundle is a replayed or duplicated epoch — the
// evidence class EvEpochReplay, implicating the origin alone.
type StaleSealError struct {
	HOP   receipt.HOPID
	Epoch EpochID
}

// Error implements error.
func (e *StaleSealError) Error() string {
	return fmt.Sprintf("core: %v already sealed epoch %d; late bundle is a stale replay", e.HOP, e.Epoch)
}

// WindowedStore is the continuous-operation receipt store: one segment
// of raw receipts per epoch, so the pipeline can verify epoch N (a
// sealed, immutable segment) while epoch N+1 is still ingesting into
// its own segment, and garbage-collect old epochs once they are
// verified and outside the retention window.
//
// Lifecycle per (HOP, epoch): receipts arrive exactly once, when the
// HOP seals the epoch (EpochSink → IngestSealed), or incrementally
// from epoch-tagged dissemination bundles (IngestBundle) followed by
// SealHOP. An epoch becomes Ready for verification when every expected
// HOP has sealed it AND its successor epoch is sealed too (or
// FinishStream declared the stream over): verification reads a ±1
// epoch evidence window around the target, because a packet observed
// upstream at the end of epoch N legitimately reaches the downstream
// HOP in its epoch N+1 — boundary spill is propagation delay, not a
// lie. MarkVerified records the outcome and Evict drops epochs that
// are verified, no longer needed as a neighbor's evidence, and older
// than newest-sealed − retention. Eviction never drops an unverified
// epoch, regardless of age — receipts are evidence, and evidence is
// only discarded after judgment.
//
// Concurrency: all methods are safe for concurrent use. Ingest into
// epoch N+1 may run concurrently with verification of epoch N−1
// (different segments); ingest and verification of the same epoch are
// mutually exclusive by the seal protocol (only Ready — fully sealed —
// epochs are verified, and a sealed (HOP, epoch) receives no further
// receipts).
type WindowedStore struct {
	mu        sync.Mutex
	hops      []receipt.HOPID
	retention int
	segs      map[EpochID]*epochSegment
	minEpoch  EpochID // epochs below this were evicted
	maxSealed EpochID // newest fully sealed epoch
	hasSealed bool
	finished  bool // stream over: no further epochs will seal
	evicted   uint64
	// Durable persistence (see backend.go). backend mirrors seals to
	// stable storage; durable/hasDurable is the recovery watermark
	// captured at attach; recovered counts epochs whose verification
	// was skipped because a durable verdict report already existed.
	backend    StoreBackend
	durable    EpochID
	hasDurable bool
	recovered  uint64
}

// epochSegment is one epoch's worth of raw receipts plus its
// lifecycle state. Receipts are kept raw (per HOP, in arrival order)
// rather than pre-indexed, because verification reads them through a
// multi-epoch evidence window assembled per target epoch.
type epochSegment struct {
	mu       sync.Mutex
	samples  map[receipt.HOPID][]receipt.SampleReceipt
	aggs     map[receipt.HOPID][]receipt.AggReceipt
	sealedBy map[receipt.HOPID]bool
	verified bool
}

func newEpochSegment() *epochSegment {
	return &epochSegment{
		samples:  make(map[receipt.HOPID][]receipt.SampleReceipt),
		aggs:     make(map[receipt.HOPID][]receipt.AggReceipt),
		sealedBy: make(map[receipt.HOPID]bool),
	}
}

// add appends receipts for one HOP.
func (s *epochSegment) add(hop receipt.HOPID, samples []receipt.SampleReceipt, aggs []receipt.AggReceipt) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.samples[hop] = append(s.samples[hop], samples...)
	s.aggs[hop] = append(s.aggs[hop], aggs...)
}

// receipts snapshots the segment's receipt slices for hop — the final
// set at seal time, handed to the durable backend.
func (s *epochSegment) receipts(hop receipt.HOPID) ([]receipt.SampleReceipt, []receipt.AggReceipt) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.samples[hop], s.aggs[hop]
}

// ingestInto files the segment's receipts for hop into store.
func (s *epochSegment) ingestInto(store *ReceiptStore, hop receipt.HOPID) {
	s.mu.Lock()
	samples, aggs := s.samples[hop], s.aggs[hop]
	s.mu.Unlock()
	for _, r := range samples {
		store.AddSamples(hop, r)
	}
	store.AddAggs(hop, aggs)
}

// NewWindowedStore builds a windowed store expecting receipts from the
// given HOPs (an epoch seals when all of them sealed it), keeping at
// most retention verified epochs behind the newest sealed one.
func NewWindowedStore(hops []receipt.HOPID, retention int) (*WindowedStore, error) {
	if retention < 1 {
		return nil, fmt.Errorf("core: retention %d epochs is below the 1-epoch minimum", retention)
	}
	if len(hops) == 0 {
		return nil, fmt.Errorf("core: windowed store needs at least one expected HOP")
	}
	sorted := append([]receipt.HOPID(nil), hops...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return &WindowedStore{
		hops:      sorted,
		retention: retention,
		segs:      make(map[EpochID]*epochSegment),
	}, nil
}

// segmentLocked returns (creating if needed) the segment for epoch.
// The store mutex must be held.
func (w *WindowedStore) segmentLocked(epoch EpochID) (*epochSegment, error) {
	if seg, ok := w.segs[epoch]; ok {
		return seg, nil
	}
	// Only reached for epochs with no live segment: refuse to open a
	// fresh one behind the eviction horizon.
	if epoch < w.minEpoch {
		return nil, fmt.Errorf("%w: epoch %d (window starts at %d)", ErrEvictedEpoch, epoch, w.minEpoch)
	}
	seg := newEpochSegment()
	w.segs[epoch] = seg
	return seg, nil
}

// Sink adapts the store to the EpochSink shape, for wiring an
// EpochDriver straight into the window without a dissemination layer
// in between. The only possible ingest error — sealing receipts into
// an already-evicted epoch, a lifecycle violation that cannot occur
// when eviction follows verification — panics loudly rather than
// dropping measurements silently.
func (w *WindowedStore) Sink() EpochSink {
	return func(hop receipt.HOPID, epoch EpochID, samples []receipt.SampleReceipt, aggs []receipt.AggReceipt) {
		if err := w.IngestSealed(hop, epoch, samples, aggs); err != nil {
			panic(err)
		}
	}
}

// IngestSealed files one HOP's complete epoch — the EpochSink shape:
// receipts are added to the epoch's segment and the HOP is marked as
// having sealed it.
func (w *WindowedStore) IngestSealed(hop receipt.HOPID, epoch EpochID, samples []receipt.SampleReceipt, aggs []receipt.AggReceipt) error {
	w.mu.Lock()
	seg, err := w.segmentLocked(epoch)
	w.mu.Unlock()
	if err != nil {
		return err
	}
	// Segment ingest synchronizes per segment, so HOPs sealing
	// different epochs never serialize on the window lock.
	seg.add(hop, samples, aggs)
	return w.SealHOP(hop, epoch)
}

// IngestBundle files one epoch-tagged dissemination bundle into its
// epoch's segment. Pair with SealHOP once a HOP's epoch is known to
// be complete (with one bundle per sealed epoch, that is on receipt of
// the bundle itself). A bundle for a (HOP, epoch) the HOP already
// sealed is refused with a StaleSealError instead of silently mutating
// judged evidence — the detection point for replayed or duplicated
// epochs; a bundle for an evicted epoch is refused with
// ErrEvictedEpoch.
func (w *WindowedStore) IngestBundle(b *dissem.Bundle) error {
	w.mu.Lock()
	seg, err := w.segmentLocked(EpochID(b.Epoch))
	if err == nil && seg.sealedBy[b.Origin] {
		err = &StaleSealError{HOP: b.Origin, Epoch: EpochID(b.Epoch)}
	}
	w.mu.Unlock()
	if err != nil {
		return err
	}
	seg.add(b.Origin, b.Samples, b.Aggs)
	return nil
}

// SealHOP records that hop has no further receipts for epoch. When the
// last expected HOP seals an epoch it counts toward readiness. With a
// durable backend attached, the HOP's now-final receipt set is
// mirrored to it here, and the epoch's durable seal is committed when
// the last HOP seals — unless the epoch predates the recovery
// watermark (already durable; re-persisting would double-count).
func (w *WindowedStore) SealHOP(hop receipt.HOPID, epoch EpochID) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	seg, err := w.segmentLocked(epoch)
	if err != nil {
		return err
	}
	first := !seg.sealedBy[hop]
	seg.sealedBy[hop] = true
	persist := first && w.backend != nil && !w.durableSealLocked(epoch)
	if persist {
		samples, aggs := seg.receipts(hop)
		if err := w.backend.AppendEpochHOP(epoch, hop, samples, aggs); err != nil {
			return fmt.Errorf("core: persisting %v epoch %d: %w", hop, epoch, err)
		}
	}
	if w.sealedLocked(seg) {
		if !w.hasSealed || epoch > w.maxSealed {
			w.maxSealed, w.hasSealed = epoch, true
		}
		if persist {
			if err := w.backend.SealEpoch(epoch); err != nil {
				return fmt.Errorf("core: durably sealing epoch %d: %w", epoch, err)
			}
		}
	}
	return nil
}

// FinishStream declares that no further epochs will seal (clean
// shutdown), which releases the final epoch for verification: mid-
// stream, epoch N only becomes Ready once N+1 is sealed, because N+1
// holds the downstream half of N's boundary-spill evidence.
func (w *WindowedStore) FinishStream() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.finished = true
}

// sealedLocked reports whether every expected HOP sealed the segment.
func (w *WindowedStore) sealedLocked(seg *epochSegment) bool {
	for _, h := range w.hops {
		if !seg.sealedBy[h] {
			return false
		}
	}
	return true
}

// Ready returns the epochs eligible for verification, in ascending
// order: sealed by every HOP, not yet verified, and with their
// successor epoch sealed too (or the stream finished) so the ±1
// evidence window is complete.
func (w *WindowedStore) Ready() []EpochID {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []EpochID
	for e, seg := range w.segs {
		if seg.verified || !w.sealedLocked(seg) {
			continue
		}
		if next, ok := w.segs[e+1]; ok && w.sealedLocked(next) {
			out = append(out, e)
		} else if w.finished {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MissingSeals returns the expected HOPs that have not sealed the
// given epoch, in HOP order — the blocking set behind a never-Ready
// epoch. Under bundle withholding this names the withholder: every
// other HOP sealed, so the single unsealed origin is the narrowest
// implicated set.
func (w *WindowedStore) MissingSeals(epoch EpochID) []receipt.HOPID {
	w.mu.Lock()
	defer w.mu.Unlock()
	seg, ok := w.segs[epoch]
	var out []receipt.HOPID
	for _, h := range w.hops {
		if !ok || !seg.sealedBy[h] {
			out = append(out, h)
		}
	}
	return out
}

// UnverifiedEpochs returns the held epochs that have not been
// verified, ascending — after FinishStream and a final VerifyReady
// sweep these are exactly the epochs something (a withheld bundle, a
// missing seal) left permanently unjudgeable.
func (w *WindowedStore) UnverifiedEpochs() []EpochID {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []EpochID
	for e, seg := range w.segs {
		if !seg.verified {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Holds reports whether the store still has a segment for epoch.
func (w *WindowedStore) Holds(epoch EpochID) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, ok := w.segs[epoch]
	return ok
}

// View assembles the verification store for one target epoch: the
// target segment plus its immediate neighbors (when they exist),
// ingested in (epoch, HOP) order so every (HOP, key) index holds its
// records in stream order. The neighbors supply the boundary-spill
// evidence — receipts a HOP sealed one interval away for packets that
// crossed the target interval's edges in flight.
func (w *WindowedStore) View(epoch EpochID) (*ReceiptStore, error) {
	w.mu.Lock()
	var segs []*epochSegment
	if epoch > 0 {
		if seg, ok := w.segs[epoch-1]; ok {
			segs = append(segs, seg)
		}
	}
	target, ok := w.segs[epoch]
	if !ok {
		w.mu.Unlock()
		return nil, fmt.Errorf("core: no segment for epoch %d", epoch)
	}
	segs = append(segs, target)
	if seg, ok := w.segs[epoch+1]; ok {
		segs = append(segs, seg)
	}
	hops := w.hops
	w.mu.Unlock()

	store := NewReceiptStore()
	for _, seg := range segs {
		for _, hop := range hops {
			seg.ingestInto(store, hop)
		}
	}
	return store, nil
}

// claimsStore assembles just the target epoch's receipts — the records
// a per-epoch report vouches for.
func (w *WindowedStore) claimsStore(epoch EpochID) (*ReceiptStore, error) {
	w.mu.Lock()
	target, ok := w.segs[epoch]
	if !ok {
		w.mu.Unlock()
		return nil, fmt.Errorf("core: no segment for epoch %d", epoch)
	}
	hops := w.hops
	w.mu.Unlock()
	store := NewReceiptStore()
	for _, hop := range hops {
		target.ingestInto(store, hop)
	}
	return store, nil
}

// tailComplete reports whether nothing can exist beyond epoch+1: the
// stream has finished, epoch+1 reaches the newest sealed epoch, and no
// segment — sealed or not — holds receipts past the evidence window.
// The last clause matters under bundle withholding: unsealed segments
// beyond the window mean some HOPs' aggregate streams continue past it
// while the withholder's stops, and comparing the half-open tail
// region would smear the withholder's blame across every honest link.
func (w *WindowedStore) tailComplete(epoch EpochID) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.finished || !w.hasSealed || epoch+1 < w.maxSealed {
		return false
	}
	for e := range w.segs {
		if e > epoch+1 {
			return false
		}
	}
	return true
}

// MarkVerified records that epoch's segment has been verified, making
// it eligible for eviction once it ages out and is no longer needed as
// a neighbor's evidence.
func (w *WindowedStore) MarkVerified(epoch EpochID) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	seg, ok := w.segs[epoch]
	if !ok {
		return fmt.Errorf("core: cannot mark epoch %d verified: no such segment", epoch)
	}
	seg.verified = true
	return nil
}

// Evict garbage-collects segments that are (a) verified, (b) done
// serving as their successor's boundary evidence — the successor is
// verified too (or already gone) — and (c) older than newestSealed −
// retention. Returns how many were dropped. Unverified epochs are
// never evicted, however old: an unverified epoch holds the only
// evidence of what its interval's traffic did.
func (w *WindowedStore) Evict() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.hasSealed || w.maxSealed < EpochID(w.retention) {
		return 0
	}
	horizon := w.maxSealed - EpochID(w.retention)
	n := 0
	for e, seg := range w.segs {
		if e >= horizon || !seg.verified {
			continue
		}
		if next, ok := w.segs[e+1]; ok && !next.verified {
			continue // still the successor's lookback evidence
		}
		delete(w.segs, e)
		n++
		w.evicted++
		if e >= w.minEpoch {
			w.minEpoch = e + 1
		}
	}
	return n
}

// WindowStats is a snapshot of the store's occupancy — the quantity
// the bounded-memory assertion tracks.
type WindowStats struct {
	// Segments is how many epoch segments are currently held.
	Segments int
	// Evicted is the cumulative number of segments garbage-collected.
	Evicted uint64
	// OldestHeld and NewestHeld bound the held epochs (zero when
	// Segments is 0).
	OldestHeld, NewestHeld EpochID
}

// Stats returns the store's occupancy snapshot.
func (w *WindowedStore) Stats() WindowStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := WindowStats{Segments: len(w.segs), Evicted: w.evicted}
	first := true
	for e := range w.segs {
		if first || e < st.OldestHeld {
			st.OldestHeld = e
		}
		if first || e > st.NewestHeld {
			st.NewestHeld = e
		}
		first = false
	}
	return st
}

// DomainBiasVerdict is one domain's per-epoch marker-bias check
// outcome (see Verifier.CheckMarkerBias); produced only when the
// verifier's config enables BiasChecks and the epoch held enough
// samples to judge.
type DomainBiasVerdict struct {
	Domain string
	Report MarkerBiasReport
}

// EpochKeyReport is one traffic key's verification outcome within one
// epoch.
type EpochKeyReport struct {
	Key packet.PathKey
	// Route is the ordinal of the key's route layout this report
	// covers — always 0 on a linear path, 0..N-1 for a mesh key with N
	// ECMP routes (see RollingVerifier.SetKeyLayouts).
	Route   int
	Links   []LinkVerdict
	Domains []DomainReport
	// Blames attributes every link violation to its narrowest
	// implicated HOP/domain set, by evidence class (see AttributeBlame);
	// empty for a violation-free epoch.
	Blames []Blame
	// Bias holds the per-domain marker-bias verdicts when
	// VerifierConfig.BiasChecks is set.
	Bias []DomainBiasVerdict
}

// EpochReport is the rolling verifier's per-epoch delta: every traffic
// key observed around the epoch, each with its link verdicts and
// domain reports — the unit a continuous deployment publishes as each
// interval closes. Reports are computed over the epoch's ±1-interval
// evidence window, so consecutive reports overlap at the boundaries
// (a sample in flight across an epoch edge is matched — and counted —
// in both neighbors' reports).
type EpochReport struct {
	Epoch EpochID
	Keys  []EpochKeyReport
	// Seq holds the sequential verdicts that crossed during this epoch
	// when the SPRT arm is on (VerifierConfig.Sequential). Omitted from
	// the canonical encoding when empty, so an unarmed run's persisted
	// verdict bytes are identical to before the arm existed.
	Seq []seqdetect.SeqVerdict `json:"Seq,omitempty"`
}

// Violations counts the consistency violations across all keys and
// links of the epoch.
func (r EpochReport) Violations() int {
	n := 0
	for _, k := range r.Keys {
		for _, lv := range k.Links {
			n += len(lv.Violations)
		}
	}
	return n
}

// MatchedSamples sums the matched samples across all keys and links.
func (r EpochReport) MatchedSamples() int64 {
	var n int64
	for _, k := range r.Keys {
		for _, lv := range k.Links {
			n += int64(lv.MatchedSamples)
		}
	}
	return n
}

// RollingVerifier turns sealed epochs into per-epoch reports: for each
// Ready epoch it runs the full §4 verification (VerifyAllLinks +
// DomainReports) over every traffic key in the epoch's evidence
// window, then marks the epoch verified so the window can evict it.
// Rolling operation changes when verification runs, not what it
// computes: ingesting every epoch's receipts into one store and
// verifying once yields verdicts byte-identical to the one-shot batch
// (TestBatchContinuousEquivalence).
type RollingVerifier struct {
	layout     Layout
	cfg        VerifierConfig
	win        *WindowedStore
	quantiles  []float64
	confidence float64
	// keyLayouts, when set, overrides the single linear layout with
	// per-traffic-key route layouts (mesh verification): each key
	// verifies once per route. Keys absent from the map fall back to
	// the constructor layout.
	keyLayouts map[packet.PathKey][]Layout
	// seq is the sequential-detection engine of the SPRT arm, nil when
	// VerifierConfig.Sequential is unset. Only the verification
	// goroutine touches it (see feedSequential).
	seq *seqdetect.Engine
}

// SetKeyLayouts installs per-key route layouts for mesh verification
// (see Deployment.KeyLayouts). The constructor's layout remains the
// fallback for keys not in the map. Call before verification starts.
//
// This lifts a linear-path assumption that was latent in rolling
// verification: one Layout applied to every traffic key is only
// correct when all keys follow the same HOP sequence — on a mesh each
// key (and each ECMP route of a key) has its own.
func (rv *RollingVerifier) SetKeyLayouts(layouts map[packet.PathKey][]Layout) {
	rv.keyLayouts = layouts
}

// layoutsFor resolves the layouts a key verifies against.
func (rv *RollingVerifier) layoutsFor(key packet.PathKey) []Layout {
	if ls, ok := rv.keyLayouts[key]; ok && len(ls) > 0 {
		return ls
	}
	return []Layout{rv.layout}
}

// NewRollingVerifier builds a rolling verifier over win. quantiles and
// confidence parameterize the per-domain delay estimates (defaults:
// quantile.DefaultQuantiles, 0.95).
func NewRollingVerifier(layout Layout, cfg VerifierConfig, win *WindowedStore, quantiles []float64, confidence float64) *RollingVerifier {
	if len(quantiles) == 0 {
		quantiles = quantile.DefaultQuantiles
	}
	if confidence == 0 {
		confidence = 0.95
	}
	rv := &RollingVerifier{layout: layout, cfg: cfg, win: win, quantiles: quantiles, confidence: confidence}
	if cfg.Sequential != nil {
		rv.seq = seqdetect.NewEngine(*cfg.Sequential)
	}
	return rv
}

// VerifyEpoch verifies one sealed epoch and marks it verified: every
// traffic key with receipts sealed in the epoch gets the scoped §4
// link checks and per-domain estimates (claims from the epoch,
// evidence from the ±1 window — see epochverify.go). An epoch with no
// traffic yields an empty report. Keys within the report verify on a
// VerifierConfig.Workers pool; reports are identical at any pool size.
func (rv *RollingVerifier) VerifyEpoch(epoch EpochID) (EpochReport, error) {
	rep := EpochReport{Epoch: epoch}
	view, err := rv.win.View(epoch)
	if err != nil {
		return rep, err
	}
	claims, err := rv.win.claimsStore(epoch)
	if err != nil {
		return rep, err
	}
	keys := claims.Keys()
	if len(keys) == 0 {
		// An empty epoch still closes the sequential engine's epoch so
		// detection latency counts calendar epochs, not traffic epochs.
		rep.Seq = rv.feedSequential(epoch, nil)
		if err := rv.win.persistReport(rep); err != nil {
			return rep, err
		}
		return rep, rv.win.MarkVerified(epoch)
	}
	// One work item per (key, route layout): a linear path has exactly
	// one layout per key; a mesh key verifies once per ECMP route.
	// Links shared by a key's routes (the ECMP access legs) carry one
	// verdict — on the first route that reaches them — so per-epoch
	// violation and blame counts tally distinct link verifications,
	// exactly like the batch sweep.
	type keyWork struct {
		key    packet.PathKey
		layout Layout
		route  int
		// skip holds the layout's link ordinals already verified on an
		// earlier route of the same key.
		skip map[int]bool
	}
	var work []keyWork
	for _, key := range keys {
		seen := make(map[[2]receipt.HOPID]bool)
		for ri, lay := range rv.layoutsFor(key) {
			var skip map[int]bool
			for li, l := range lay.Links() {
				pair := [2]receipt.HOPID{l.Up, l.Down}
				if seen[pair] {
					if skip == nil {
						skip = make(map[int]bool)
					}
					skip[li] = true
					continue
				}
				seen[pair] = true
			}
			work = append(work, keyWork{key: key, layout: lay, route: ri, skip: skip})
		}
	}
	rep.Keys = make([]EpochKeyReport, len(work))
	errs := make([]error, len(work))
	var seqCols []*seqCollector
	if rv.seq != nil {
		// One private collector per work item: the parallel sweep
		// captures evidence lock-free, the serial feed below replays it
		// in work order so the engine sees one deterministic stream.
		seqCols = make([]*seqCollector, len(work))
		for i := range seqCols {
			seqCols[i] = &seqCollector{}
		}
	}
	runParallel(resolveWorkers(rv.cfg.Workers), len(work), func(i int) {
		key, layout := work[i].key, work[i].layout
		v := NewVerifierOn(layout, view, key)
		v.SetConfig(rv.cfg)
		scope := &epochScope{
			view:   v,
			claims: claims,
			// The view spans max(0, epoch−1)..epoch+1, so it reaches
			// the stream start exactly when epoch ≤ 1.
			headComplete: epoch <= 1,
			tailComplete: rv.win.tailComplete(epoch),
		}
		if seqCols != nil {
			scope.seq = seqCols[i]
		}
		kr := EpochKeyReport{Key: key, Route: work[i].route}
		for li, l := range layout.Links() {
			if work[i].skip[li] {
				continue
			}
			kr.Links = append(kr.Links, scope.epochLinkCheck(key, li, l.Up, l.Down))
		}
		for _, seg := range layout.DomainSegments() {
			dr, err := scope.epochDomainReport(key, seg, rv.quantiles, rv.confidence)
			if err != nil {
				errs[i] = fmt.Errorf("core: epoch %d key %v: %w", epoch, key, err)
				return
			}
			kr.Domains = append(kr.Domains, dr)
		}
		kr.Blames = AttributeBlame(layout, epoch, kr.Links)
		if rv.cfg.BiasChecks {
			for _, seg := range layout.DomainSegments() {
				bias, err := v.CheckMarkerBias(seg.Up, seg.Down)
				if err != nil {
					continue // too few samples this epoch to judge
				}
				kr.Bias = append(kr.Bias, DomainBiasVerdict{Domain: seg.Name, Report: bias})
				if bias.Suspicious {
					kr.Blames = append(kr.Blames, BlameMarkerBias(epoch, seg, bias))
				}
			}
		}
		rep.Keys[i] = kr
	})
	for _, err := range errs {
		if err != nil {
			return rep, err
		}
	}
	if rv.seq != nil {
		rep.Seq = rv.feedSequential(epoch, seqCols)
	}
	// The verdict goes durable before the RAM window forgets the epoch
	// needs judging — a crash between the two re-verifies, never skips.
	if err := rv.win.persistReport(rep); err != nil {
		return rep, err
	}
	if err := rv.win.MarkVerified(epoch); err != nil {
		return rep, err
	}
	return rep, nil
}

// VerifyReady verifies every Ready epoch in ascending order and
// returns their reports. Epochs recovered from a durable backend —
// sealed below the recovery watermark with a verdict report already on
// disk — are marked verified without re-verification and yield no
// report here (the durable report stands; WindowedStore.Recovered
// counts them).
func (rv *RollingVerifier) VerifyReady() ([]EpochReport, error) {
	var out []EpochReport
	for _, e := range rv.win.Ready() {
		if rv.win.skipRecovered(e) {
			continue
		}
		rep, err := rv.VerifyEpoch(e)
		if err != nil {
			return out, err
		}
		out = append(out, rep)
	}
	return out, nil
}
