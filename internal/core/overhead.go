package core

import (
	"fmt"

	"vpm/internal/receipt"
)

// This file reproduces the back-of-the-envelope overhead accounting of
// §7.1 with this implementation's actual encoded sizes, so the memory
// and bandwidth experiments can print the paper's scenario rows next
// to ours.

// MemoryBudget is the §7.1 memory requirement of one HOP.
type MemoryBudget struct {
	// ActivePaths is the number of concurrently active paths.
	ActivePaths int
	// PerPathStateBytes is the open-receipt state per path.
	PerPathStateBytes int
	// MonitoringCacheBytes = ActivePaths * PerPathStateBytes.
	MonitoringCacheBytes int64
	// TempBufferEntries is the worst-case number of 〈PktID, Time〉
	// records buffered during one reordering window J at the given
	// packet rate.
	TempBufferEntries int64
	// TempBufferBytes converts entries to bytes.
	TempBufferBytes int64
}

// String renders the budget in the paper's units.
func (m MemoryBudget) String() string {
	return fmt.Sprintf("paths=%d cache=%.2fMB tempbuf=%.0f entries (%.2fMB)",
		m.ActivePaths,
		float64(m.MonitoringCacheBytes)/1e6,
		float64(m.TempBufferEntries),
		float64(m.TempBufferBytes)/1e6)
}

// ComputeMemoryBudget evaluates the §7.1 scenario: activePaths
// concurrently active origin-prefix pairs, an interface observing
// ratePPS packets per second, and per-packet state retained for
// windowNS (the J threshold; the paper sets 10 ms).
func ComputeMemoryBudget(activePaths int, ratePPS float64, windowNS int64) MemoryBudget {
	entries := int64(ratePPS * float64(windowNS) / 1e9)
	return MemoryBudget{
		ActivePaths:          activePaths,
		PerPathStateBytes:    receipt.BaseAggReceiptBytes,
		MonitoringCacheBytes: int64(activePaths) * int64(receipt.BaseAggReceiptBytes),
		TempBufferEntries:    entries,
		TempBufferBytes:      entries * receipt.SampleRecordBytes,
	}
}

// BandwidthBudget is the §7.1 receipt-bandwidth estimate for a path.
type BandwidthBudget struct {
	// HOPs on the path.
	HOPs int
	// PktsPerAggregate is the mean aggregate size.
	PktsPerAggregate float64
	// SampleRate is each HOP's sampling rate.
	SampleRate float64
	// BytesPerPacket is the receipt bytes generated per forwarded
	// packet across all HOPs.
	BytesPerPacket float64
	// OverheadFraction is BytesPerPacket / avgPacketBytes.
	OverheadFraction float64
}

// String renders the budget.
func (b BandwidthBudget) String() string {
	return fmt.Sprintf("hops=%d agg=%.0fpkt sample=%.2g%% -> %.3f B/pkt (%.4f%%)",
		b.HOPs, b.PktsPerAggregate, b.SampleRate*100, b.BytesPerPacket, b.OverheadFraction*100)
}

// ComputeBandwidthBudget evaluates the §7.1 scenario analytically: a
// path of nHOPs where each HOP produces one aggregate receipt per
// pktsPerAgg packets and samples sampleRate of the traffic, with
// avgPktBytes mean packet size. Per sampled packet each HOP emits one
// 〈PktID, Time〉 record; per aggregate a base receipt.
func ComputeBandwidthBudget(nHOPs int, pktsPerAgg float64, sampleRate float64, avgPktBytes float64) BandwidthBudget {
	perPkt := float64(nHOPs) * (float64(receipt.BaseAggReceiptBytes)/pktsPerAgg +
		sampleRate*float64(receipt.SampleRecordBytes))
	return BandwidthBudget{
		HOPs:             nHOPs,
		PktsPerAggregate: pktsPerAgg,
		SampleRate:       sampleRate,
		BytesPerPacket:   perPkt,
		OverheadFraction: perPkt / avgPktBytes,
	}
}

// ComputeCompactBandwidthBudget is ComputeBandwidthBudget at the
// paper's packed field sizes (receipt.AppendCompact: 7-byte records,
// 53-byte base aggregate receipts) — the encoding that makes the
// paper's "0.2 bytes per packet" arithmetic directly comparable.
func ComputeCompactBandwidthBudget(nHOPs int, pktsPerAgg float64, sampleRate float64, avgPktBytes float64) BandwidthBudget {
	base := receipt.AggReceipt{}.CompactWireSize()
	perPkt := float64(nHOPs) * (float64(base)/pktsPerAgg +
		sampleRate*float64(receipt.CompactRecordBytes))
	return BandwidthBudget{
		HOPs:             nHOPs,
		PktsPerAggregate: pktsPerAgg,
		SampleRate:       sampleRate,
		BytesPerPacket:   perPkt,
		OverheadFraction: perPkt / avgPktBytes,
	}
}

// PaperMemoryScenario returns the §7.1 numbers for the paper's own
// field sizes (20-byte per-path state, 7-byte temp records), for
// side-by-side reporting.
func PaperMemoryScenario(activePaths int, ratePPS float64, windowNS int64) MemoryBudget {
	entries := int64(ratePPS * float64(windowNS) / 1e9)
	return MemoryBudget{
		ActivePaths:          activePaths,
		PerPathStateBytes:    20,
		MonitoringCacheBytes: int64(activePaths) * 20,
		TempBufferEntries:    entries,
		TempBufferBytes:      entries * 7, // 4-byte PktID + 3-byte Time
	}
}
