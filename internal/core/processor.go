package core

import (
	"vpm/internal/receipt"
)

// Processor is the control-plane module of §7: it periodically reads
// finalized receipts out of a collector's monitoring cache, retains
// them for dissemination, and accounts for the receipt bandwidth —
// the tunable cost knob of the protocol. It drives any PathCollector
// — single-threaded or sharded.
type Processor struct {
	c PathCollector

	Samples []receipt.SampleReceipt
	Aggs    []receipt.AggReceipt

	receiptBytes int64
	polls        int
}

// NewProcessor attaches a processor to a collector.
func NewProcessor(c PathCollector) *Processor {
	return &Processor{c: c}
}

// Poll drains the collector once — a real deployment runs this on a
// timer; simulations call it between trace segments or once at the
// end via Finalize.
func (p *Processor) Poll() {
	samples, aggs := p.c.Drain()
	p.retain(samples, aggs)
}

// Finalize flushes the collector's remaining state into the
// processor.
func (p *Processor) Finalize() {
	samples, aggs := p.c.Flush()
	p.retain(samples, aggs)
}

func (p *Processor) retain(samples []receipt.SampleReceipt, aggs []receipt.AggReceipt) {
	p.polls++
	for _, s := range samples {
		p.receiptBytes += int64(s.WireSize())
	}
	for _, a := range aggs {
		p.receiptBytes += int64(a.WireSize())
	}
	p.Samples = append(p.Samples, samples...)
	p.Aggs = append(p.Aggs, aggs...)
}

// CombinedSamples merges all retained sample receipts per path into
// one receipt each (the ⊎ of §4), returning one combined receipt per
// path observed by this HOP.
func (p *Processor) CombinedSamples() []receipt.SampleReceipt {
	byPath := make(map[receipt.PathID]int)
	var out []receipt.SampleReceipt
	for _, s := range p.Samples {
		if i, ok := byPath[s.Path]; ok {
			out[i].Samples = append(out[i].Samples, s.Samples...)
		} else {
			byPath[s.Path] = len(out)
			cp := receipt.SampleReceipt{Path: s.Path}
			cp.Samples = append(cp.Samples, s.Samples...)
			out = append(out, cp)
		}
	}
	return out
}

// ReceiptBytes returns the cumulative wire size of all receipts this
// processor has retained — the numerator of the §7.1 bandwidth
// overhead.
func (p *Processor) ReceiptBytes() int64 { return p.receiptBytes }

// Polls returns how many times the processor has drained.
func (p *Processor) Polls() int { return p.polls }
