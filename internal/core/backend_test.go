package core

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"vpm/internal/packet"
	"vpm/internal/receipt"
)

// mockBackend is an in-memory StoreBackend recording every call — the
// contract double for the wiring tests (the real implementation is
// segstore.Store, exercised by its own package and the e2e harness).
type mockBackend struct {
	mu      sync.Mutex
	appends []string // "epoch/hop/nSamples/nAggs"
	sealed  []EpochID
	reports map[EpochID][]byte
	failOn  string // method name to fail, "" for none
}

func newMockBackend() *mockBackend {
	return &mockBackend{reports: make(map[EpochID][]byte)}
}

func (m *mockBackend) AppendEpochHOP(epoch EpochID, hop receipt.HOPID, samples []receipt.SampleReceipt, aggs []receipt.AggReceipt) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failOn == "append" {
		return fmt.Errorf("mock: append refused")
	}
	m.appends = append(m.appends, fmt.Sprintf("%d/%d/%d/%d", epoch, hop, len(samples), len(aggs)))
	return nil
}

func (m *mockBackend) SealEpoch(epoch EpochID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failOn == "seal" {
		return fmt.Errorf("mock: seal refused")
	}
	m.sealed = append(m.sealed, epoch)
	return nil
}

func (m *mockBackend) LastSealed() (EpochID, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.sealed) == 0 {
		return 0, false
	}
	last := m.sealed[0]
	for _, e := range m.sealed {
		if e > last {
			last = e
		}
	}
	return last, true
}

func (m *mockBackend) HasReport(epoch EpochID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.reports[epoch]
	return ok
}

func (m *mockBackend) PutReport(epoch EpochID, encoded []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failOn == "report" {
		return fmt.Errorf("mock: report refused")
	}
	m.reports[epoch] = append([]byte(nil), encoded...)
	return nil
}

// backendTestReceipts builds a small distinct receipt set per (epoch,
// hop).
func backendTestReceipts(epoch EpochID, hop receipt.HOPID) ([]receipt.SampleReceipt, []receipt.AggReceipt) {
	path := receipt.PathID{
		Key: packet.PathKey{
			Src: packet.Prefix{Addr: [4]byte{10, 0, 0, 0}, Bits: 8},
			Dst: packet.Prefix{Addr: [4]byte{172, 16, 0, 0}, Bits: 16},
		},
		PrevHOP: hop, NextHOP: hop + 1, MaxDiffNS: 100,
	}
	samples := []receipt.SampleReceipt{{
		Path:    path,
		Samples: []receipt.SampleRecord{{PktID: uint64(epoch)*100 + uint64(hop), TimeNS: int64(epoch)}},
	}}
	aggs := []receipt.AggReceipt{{Path: path, Agg: receipt.AggID{First: 1, Last: 2}, PktCnt: 3}}
	return samples, aggs
}

// ingestBackendEpochs replays epochs [0, n) across hops into win.
func ingestBackendEpochs(t *testing.T, win *WindowedStore, n int, hops []receipt.HOPID) {
	t.Helper()
	for e := EpochID(0); e < EpochID(n); e++ {
		for _, hop := range hops {
			samples, aggs := backendTestReceipts(e, hop)
			if err := win.IngestSealed(hop, e, samples, aggs); err != nil {
				t.Fatalf("IngestSealed(%v, %d): %v", hop, e, err)
			}
		}
	}
}

func TestBackendMirrorsSealsAndReports(t *testing.T) {
	hops := []receipt.HOPID{0, 1}
	win, err := NewWindowedStore(hops, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := newMockBackend()
	win.AttachBackend(b)
	ingestBackendEpochs(t, win, 3, hops)
	win.FinishStream()

	wantAppends := []string{"0/0/1/1", "0/1/1/1", "1/0/1/1", "1/1/1/1", "2/0/1/1", "2/1/1/1"}
	if !reflect.DeepEqual(b.appends, wantAppends) {
		t.Fatalf("appends = %v, want %v", b.appends, wantAppends)
	}
	if !reflect.DeepEqual(b.sealed, []EpochID{0, 1, 2}) {
		t.Fatalf("sealed = %v, want [0 1 2]", b.sealed)
	}

	// Duplicate SealHOP must not re-persist (idempotent on the durable
	// side too).
	if err := win.SealHOP(0, 1); err != nil {
		t.Fatalf("duplicate SealHOP: %v", err)
	}
	if len(b.appends) != len(wantAppends) || len(b.sealed) != 3 {
		t.Fatalf("duplicate SealHOP re-persisted: %d appends, %d seals", len(b.appends), len(b.sealed))
	}

	rolling := NewRollingVerifier(Layout{}, VerifierConfig{}, win, nil, 0)
	reps, err := rolling.VerifyReady()
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("%d reports, want 3", len(reps))
	}
	for _, rep := range reps {
		stored, ok := b.reports[rep.Epoch]
		if !ok {
			t.Fatalf("epoch %d report not persisted", rep.Epoch)
		}
		want, err := EncodeEpochReport(rep)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(stored, want) {
			t.Fatalf("epoch %d persisted bytes differ from canonical encoding", rep.Epoch)
		}
		back, err := DecodeEpochReport(stored)
		if err != nil {
			t.Fatalf("decode persisted epoch %d: %v", rep.Epoch, err)
		}
		if back.Epoch != rep.Epoch {
			t.Fatalf("persisted report decodes to epoch %d, want %d", back.Epoch, rep.Epoch)
		}
	}
}

func TestBackendRecoverySkipsDurableEpochs(t *testing.T) {
	hops := []receipt.HOPID{0, 1}

	// Run 1: three epochs persisted and verified.
	win1, err := NewWindowedStore(hops, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := newMockBackend()
	win1.AttachBackend(b)
	ingestBackendEpochs(t, win1, 3, hops)
	win1.FinishStream()
	if _, err := NewRollingVerifier(Layout{}, VerifierConfig{}, win1, nil, 0).VerifyReady(); err != nil {
		t.Fatal(err)
	}

	// Run 2 ("restart"): fresh window, same backend, the stream
	// re-executes from epoch 0 plus one new epoch.
	appendsBefore, sealsBefore := len(b.appends), len(b.sealed)
	win2, err := NewWindowedStore(hops, 2)
	if err != nil {
		t.Fatal(err)
	}
	win2.AttachBackend(b)
	if wm, ok := win2.DurableWatermark(); !ok || wm != 2 {
		t.Fatalf("watermark = %d, %v; want 2, true", wm, ok)
	}
	ingestBackendEpochs(t, win2, 4, hops)
	win2.FinishStream()

	// Only the new epoch persisted — no double-count of 0..2.
	if got := b.appends[appendsBefore:]; !reflect.DeepEqual(got, []string{"3/0/1/1", "3/1/1/1"}) {
		t.Fatalf("re-execution appended %v, want epoch 3 only", got)
	}
	if got := b.sealed[sealsBefore:]; !reflect.DeepEqual(got, []EpochID{3}) {
		t.Fatalf("re-execution sealed %v, want [3]", got)
	}

	reps, err := NewRollingVerifier(Layout{}, VerifierConfig{}, win2, nil, 0).VerifyReady()
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || reps[0].Epoch != 3 {
		t.Fatalf("re-verified %v, want epoch 3 only", reps)
	}
	if got := win2.Recovered(); got != 3 {
		t.Fatalf("Recovered = %d, want 3", got)
	}
	if r := win2.Ready(); len(r) != 0 {
		t.Fatalf("epochs still ready after recovery sweep: %v", r)
	}
}

func TestBackendReverifiesSealedButUnreportedEpoch(t *testing.T) {
	hops := []receipt.HOPID{0}

	// Run 1 "crashes" after sealing 0..2 but before persisting epoch
	// 2's report.
	win1, _ := NewWindowedStore(hops, 2)
	b := newMockBackend()
	win1.AttachBackend(b)
	ingestBackendEpochs(t, win1, 3, hops)
	win1.FinishStream()
	if _, err := NewRollingVerifier(Layout{}, VerifierConfig{}, win1, nil, 0).VerifyReady(); err != nil {
		t.Fatal(err)
	}
	delete(b.reports, 2) // the crash ate the last report

	win2, _ := NewWindowedStore(hops, 2)
	win2.AttachBackend(b)
	ingestBackendEpochs(t, win2, 3, hops)
	win2.FinishStream()
	reps, err := NewRollingVerifier(Layout{}, VerifierConfig{}, win2, nil, 0).VerifyReady()
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 1 || reps[0].Epoch != 2 {
		t.Fatalf("re-verified %v, want exactly the unreported epoch 2", reps)
	}
	if !b.HasReport(2) {
		t.Fatal("epoch 2's report still missing after recovery")
	}
	if got := win2.Recovered(); got != 2 {
		t.Fatalf("Recovered = %d, want 2", got)
	}
}

func TestBackendErrorsPropagate(t *testing.T) {
	hops := []receipt.HOPID{0}
	win, _ := NewWindowedStore(hops, 2)
	b := newMockBackend()
	b.failOn = "append"
	win.AttachBackend(b)
	samples, aggs := backendTestReceipts(0, 0)
	if err := win.IngestSealed(0, 0, samples, aggs); err == nil {
		t.Fatal("append failure did not propagate through IngestSealed")
	}

	b2 := newMockBackend()
	b2.failOn = "report"
	win2, _ := NewWindowedStore(hops, 2)
	win2.AttachBackend(b2)
	ingestBackendEpochs(t, win2, 1, hops)
	win2.FinishStream()
	if _, err := NewRollingVerifier(Layout{}, VerifierConfig{}, win2, nil, 0).VerifyReady(); err == nil {
		t.Fatal("report-persist failure did not propagate through VerifyReady")
	}
}
