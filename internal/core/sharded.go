package core

import (
	"encoding/binary"
	"runtime"
	"sync"

	"vpm/internal/hashing"
	"vpm/internal/netsim"
	"vpm/internal/packet"
	"vpm/internal/receipt"
	"vpm/internal/streamagg"
)

// resolveShards maps the CollectorConfig.Shards knob to an actual
// shard count: 0 means GOMAXPROCS, anything else is taken literally.
func resolveShards(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// pathKeyHash hashes a PathKey for shard selection and for the
// per-shard path-state memo. It packs both prefix addresses into one
// word and folds the prefix lengths in before mixing.
func pathKeyHash(key packet.PathKey) uint64 {
	src := uint64(binary.BigEndian.Uint32(key.Src.Addr[:]))
	dst := uint64(binary.BigEndian.Uint32(key.Dst.Addr[:]))
	bits := uint64(key.Src.Bits)<<6 | uint64(key.Dst.Bits)
	return hashing.Mix64((src<<32 | dst) ^ bits*0x9e3779b97f4a7c15)
}

// classifyCacheSize is the dispatcher's direct-mapped classification
// cache: it short-circuits the two longest-prefix-match lookups for
// recently seen (source, destination) address pairs. Flows repeat
// addresses for many packets, but a direct-mapped cache lives and dies
// by conflict misses: with a few hundred live pairs, 512 slots still
// evict hot pairs into each other's slots often enough to put the LPM
// walk back on the per-packet profile. 4096 slots (~256 KiB) keeps the
// conflict rate negligible at working sets into the low thousands of
// pairs. Must be a power of two.
const classifyCacheSize = 4096

// classifyEntry caches one address pair's classification outcome.
type classifyEntry struct {
	addrs uint64 // src<<32 | dst
	valid bool
	ok    bool // false: pair matched no prefix (still cached)
	key   packet.PathKey
	hash  uint64 // pathKeyHash(key), valid only when ok
	shard uint32
}

// stateMemoSize is each shard's direct-mapped PathKey → *pathState
// memo, skipping the path-map lookup for runs of hot paths. Must be a
// power of two.
const stateMemoSize = 64

// stateMemoEntry caches one shard-local path-state lookup.
type stateMemoEntry struct {
	key   packet.PathKey
	state *pathState
}

// shardRun is a maximal run of consecutive same-path observations in
// a shard's sub-batch: the dispatcher run-length-encodes while
// partitioning, so the shard worker feeds whole runs to the batch
// hooks without per-packet key comparisons or copies.
type shardRun struct {
	key  packet.PathKey
	hash uint64 // pathKeyHash(key), for the memo index
	n    int
}

// shard is one lock-free slice of a ShardedCollector: its own path
// map, samplers and partitioner state, touched only by the goroutine
// currently processing this shard's sub-batch.
type shard struct {
	cfg     *CollectorConfig
	backend *backend
	paths   map[packet.PathKey]*pathState
	memo    [stateMemoSize]stateMemoEntry

	// Reusable sub-batch buffers, filled by the dispatcher: the
	// observations in shard-arrival order plus their run-length
	// encoding by path.
	runs []shardRun
	recs []receipt.SampleRecord
}

// stateFor returns (creating on first use) the shard's state for key.
func (s *shard) stateFor(key packet.PathKey, hash uint64) *pathState {
	m := &s.memo[hash&(stateMemoSize-1)]
	if m.state != nil && m.key == key {
		return m.state
	}
	st, ok := s.paths[key]
	if !ok {
		st = s.backend.newPathState(s.cfg, key)
		s.paths[key] = st
	}
	m.key, m.state = key, st
	return st
}

// process runs the shard's pending sub-batch through Algorithm 1 and
// Algorithm 2, feeding each same-path run to the batch hooks so
// per-packet dispatch is amortized. Observations stay in arrival
// order, so the shard's per-path state evolves exactly as a serial
// collector's would.
func (s *shard) process() {
	recs := s.recs
	off := 0
	for i := range s.runs {
		r := &s.runs[i]
		st := s.stateFor(r.key, r.hash)
		st.touched = true
		run := recs[off : off+r.n]
		st.part.ObserveBatch(run)
		st.sampler.ObserveBatch(run)
		off += r.n
	}
	s.runs = s.runs[:0]
	s.recs = recs[:0]
}

// ShardedCollector is the multi-core data-plane module of one HOP: it
// hash-partitions PathKeys across N single-threaded collector shards,
// each owning its own path map, sampler and partitioner state, so the
// per-packet path needs no locks. It implements PathCollector and is
// receipt-for-receipt equivalent to a single Collector fed the same
// observations (each path's stream lands wholly in one shard, in
// arrival order).
//
// Concurrency model: Observe/ObserveBatch/Drain/Flush must be called
// from one goroutine at a time (netsim's replay gives each HOP's
// observer its own goroutine); inside ObserveBatch the shards process
// their sub-batches concurrently and the call returns only when all
// shards are done.
type ShardedCollector struct {
	cfg     CollectorConfig
	backend backend
	shards  []*shard
	cache   [classifyCacheSize]classifyEntry
	epoch   EpochID

	// Dispatcher scratch, reused across ObserveBatch calls so the
	// steady-state batch path allocates nothing.
	busy []*shard
	wg   sync.WaitGroup

	// Recycled outer receipt slices for Drain/Flush (see Recycle).
	spareSamples []receipt.SampleReceipt
	spareAggs    []receipt.AggReceipt

	observed     uint64
	unclassified uint64
}

// NewShardedCollector builds a sharded collector with
// resolveShards(cfg.Shards) shards (0 = GOMAXPROCS).
func NewShardedCollector(cfg CollectorConfig) (*ShardedCollector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := resolveShards(cfg.Shards)
	c := &ShardedCollector{cfg: cfg, shards: make([]*shard, n)}
	c.backend = newBackend(&c.cfg)
	for i := range c.shards {
		c.shards[i] = &shard{cfg: &c.cfg, backend: &c.backend, paths: make(map[packet.PathKey]*pathState)}
	}
	return c, nil
}

// NumShards returns the shard count.
func (c *ShardedCollector) NumShards() int { return len(c.shards) }

// HOP returns the collector's HOP identity.
func (c *ShardedCollector) HOP() receipt.HOPID { return c.cfg.HOP }

// classify resolves a packet's PathKey, shard and path hash through
// the direct-mapped cache, falling back to the prefix table's
// longest-prefix match on a miss.
func (c *ShardedCollector) classify(pkt *packet.Packet) (key packet.PathKey, hash uint64, sh uint32, ok bool) {
	addrs := uint64(binary.BigEndian.Uint32(pkt.Src[:]))<<32 | uint64(binary.BigEndian.Uint32(pkt.Dst[:]))
	e := &c.cache[hashing.Mix64(addrs)&(classifyCacheSize-1)]
	if e.valid && e.addrs == addrs {
		return e.key, e.hash, e.shard, e.ok
	}
	key, ok = c.cfg.Table.Classify(pkt)
	e.addrs, e.valid, e.ok = addrs, true, ok
	if ok {
		hash = pathKeyHash(key)
		sh = uint32(hash % uint64(len(c.shards)))
		e.key, e.hash, e.shard = key, hash, sh
	}
	return key, hash, sh, ok
}

// Observe processes one packet observation — the single-packet
// compatibility shim. It runs the owning shard inline.
//
//vpm:hotpath
func (c *ShardedCollector) Observe(pkt *packet.Packet, digest uint64, tNS int64) {
	c.observed++
	key, hash, sh, ok := c.classify(pkt)
	if !ok {
		c.unclassified++
		return
	}
	st := c.shards[sh].stateFor(key, hash)
	st.touched = true
	st.part.Observe(digest, tNS)
	st.sampler.Observe(digest, tNS)
}

// ObserveBatch processes a batch of observations: the dispatcher
// classifies and partitions the batch into per-shard sub-batches
// (preserving arrival order within each shard), then the busy shards
// run concurrently, one goroutine each.
//
//vpm:hotpath
func (c *ShardedCollector) ObserveBatch(batch []netsim.Observation) {
	c.observed += uint64(len(batch))
	for i := range batch {
		key, hash, sh, ok := c.classify(batch[i].Pkt)
		if !ok {
			c.unclassified++
			continue
		}
		s := c.shards[sh]
		s.recs = append(s.recs, receipt.SampleRecord{PktID: batch[i].Digest, TimeNS: batch[i].TimeNS})
		if n := len(s.runs); n > 0 {
			if r := &s.runs[n-1]; r.hash == hash && r.key == key {
				r.n++
				continue
			}
		}
		s.runs = append(s.runs, shardRun{key: key, hash: hash, n: 1})
	}
	busy := c.busy[:0]
	for _, s := range c.shards {
		if len(s.recs) > 0 {
			busy = append(busy, s)
		}
	}
	c.busy = busy
	if len(busy) == 0 {
		return
	}
	// The dispatcher processes the last busy shard itself instead of
	// parking in Wait — one fewer goroutine handoff per batch. The
	// workers run a plain method with explicit arguments (no closure)
	// so spawning them allocates nothing in steady state.
	for _, s := range busy[:len(busy)-1] {
		c.wg.Add(1)
		go c.runShard(s)
	}
	busy[len(busy)-1].process()
	c.wg.Wait()
}

// runShard processes one shard's sub-batch on a worker goroutine.
func (c *ShardedCollector) runShard(s *shard) {
	s.process()
	c.wg.Done()
}

// Drain returns the receipts finalized since the last Drain across
// all shards, merged per path via the ⊎ combination operators and
// sorted by PathID — identical runs drain identical receipt
// sequences, and a sharded drain is byte-identical to a serial one.
//
//vpm:hotpath
func (c *ShardedCollector) Drain() ([]receipt.SampleReceipt, []receipt.AggReceipt) {
	samples, aggs := c.takeSpares()
	for _, s := range c.shards {
		evicted := false
		for key, st := range s.paths {
			var evict bool
			samples, aggs, evict = drainPath(st, c.cfg.EvictIdleEpochs, samples, aggs)
			if evict {
				delete(s.paths, key)
				evicted = true
			}
		}
		if evicted {
			// The state memo holds raw *pathState pointers; a stale hit
			// on an evicted path would resurrect state the path map no
			// longer drains. Eviction epochs are rare, so a wholesale
			// clear beats per-entry bookkeeping.
			s.memo = [stateMemoSize]stateMemoEntry{}
		}
	}
	samples = mergeSamplesByPath(samples)
	sortReceipts(samples, aggs)
	return samples, aggs
}

// takeSpares hands out the recycled outer receipt slices (nil when the
// caller never recycles — the allocating, always-safe default).
func (c *ShardedCollector) takeSpares() ([]receipt.SampleReceipt, []receipt.AggReceipt) {
	samples, aggs := c.spareSamples, c.spareAggs
	c.spareSamples, c.spareAggs = nil, nil
	return samples, aggs
}

// Flush finalizes all shards' open state and returns the remaining
// receipts, in the same deterministic order as Drain.
func (c *ShardedCollector) Flush() ([]receipt.SampleReceipt, []receipt.AggReceipt) {
	samples, aggs := c.takeSpares()
	for _, s := range c.shards {
		for _, st := range s.paths {
			flushed := st.part.Flush()
			aggs = append(aggs, flushed...)
			st.part.Recycle(flushed)
			if recs := st.sampler.Take(); len(recs) > 0 {
				samples = append(samples, receipt.SampleReceipt{Path: st.id, Samples: recs})
			}
		}
	}
	samples = mergeSamplesByPath(samples)
	sortReceipts(samples, aggs)
	return samples, aggs
}

// Recycle hands the buffers of a previous Drain/Flush result back for
// reuse: the outer slices return to the dispatcher, each receipt's
// record buffer to its owning shard's sampler. Safe only when nothing
// retains the result (see PathCollector.Recycle).
func (c *ShardedCollector) Recycle(samples []receipt.SampleReceipt, aggs []receipt.AggReceipt) {
	for i := range samples {
		key := samples[i].Path.Key
		s := c.shards[pathKeyHash(key)%uint64(len(c.shards))]
		if st, ok := s.paths[key]; ok {
			st.sampler.Recycle(samples[i].Samples)
		}
	}
	if cap(samples) > cap(c.spareSamples) {
		c.spareSamples = samples[:0]
	}
	if cap(aggs) > cap(c.spareAggs) {
		c.spareAggs = aggs[:0]
	}
}

// DrainSketches seals and returns the streaming sketches of every path
// that sampled at least one packet since the last call, PathID-sorted
// across shards. Ownership passes to the caller; return them via
// SketchPool().Put.
func (c *ShardedCollector) DrainSketches() []*streamagg.PathSketch {
	var out []*streamagg.PathSketch
	for _, s := range c.shards {
		for _, st := range s.paths {
			if st.sketch != nil {
				out = append(out, st.sketch)
				st.sketch = nil
			}
		}
	}
	sortSketches(out)
	return out
}

// SketchPool returns the pool sealed sketches recycle through (nil
// under BackendExact).
func (c *ShardedCollector) SketchPool() *streamagg.Pool { return c.backend.pool }

// mergeSamplesByPath combines sample receipts that share a PathID via
// receipt.CombineSamples, upholding Drain's one-receipt-per-path
// contract. With an injective PathID builder (the documented
// requirement) duplicates cannot occur; the merge keeps serial and
// sharded drains behaving identically even if a caller breaks it.
func mergeSamplesByPath(samples []receipt.SampleReceipt) []receipt.SampleReceipt {
	//lint:ignore hotpath one dedup map per drain, not per packet
	byPath := make(map[receipt.PathID]int, len(samples))
	out := samples[:0]
	for _, s := range samples {
		if i, ok := byPath[s.Path]; ok {
			merged, err := receipt.CombineSamples(out[i], s)
			if err != nil {
				// Unreachable: entries are grouped by identical
				// PathID, the only error CombineSamples has. Loud is
				// better than silently dropping measurements.
				panic(err)
			}
			out[i] = merged
			continue
		}
		byPath[s.Path] = len(out)
		out = append(out, s)
	}
	return out
}

// Memory reports the §7.1 memory accounting aggregated across shards:
// path counts and cache bytes sum, the temp-buffer peak is the
// per-shard maximum (each shard owns its own buffers).
func (c *ShardedCollector) Memory() MemoryStats {
	var m MemoryStats
	for _, s := range c.shards {
		m.ActivePaths += len(s.paths)
		m.MonitoringCacheBytes += len(s.paths) * receipt.BaseAggReceiptBytes
		for _, st := range s.paths {
			if hw := st.sampler.TempHighWater(); hw > m.TempBufferPeakEntries {
				m.TempBufferPeakEntries = hw
			}
		}
	}
	m.TempBufferPeakBytes = m.TempBufferPeakEntries * receipt.SampleRecordBytes
	return m
}

// Stats returns (packets observed, packets that matched no prefix).
func (c *ShardedCollector) Stats() (observed, unclassified uint64) {
	return c.observed, c.unclassified
}
