package core

import (
	"bytes"
	"testing"

	"vpm/internal/netsim"
	"vpm/internal/packet"
	"vpm/internal/receipt"
	"vpm/internal/streamagg"
	"vpm/internal/trace"
)

// hotpathWorkload builds a deterministic multi-path observation stream
// chunked into batches. The same digests repeat on every feed pass (so
// marker and cut positions are identical run to run); timestamps are
// shifted forward by span between passes to keep HOP clocks monotonic.
func hotpathWorkload(t testing.TB, npkts int) (batches [][]netsim.Observation, span int64, cfg CollectorConfig) {
	t.Helper()
	tc := equivTraceConfig(4, 100_000, int64(npkts)*10_000)
	pkts, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) > npkts {
		pkts = pkts[:npkts]
	}
	obs := make([]netsim.Observation, len(pkts))
	for i := range pkts {
		obs[i] = netsim.Observation{Pkt: &pkts[i], Digest: pkts[i].Digest(1), TimeNS: int64(i) * 10_000}
	}
	for off := 0; off < len(obs); off += 4096 {
		end := off + 4096
		if end > len(obs) {
			end = len(obs)
		}
		batches = append(batches, obs[off:end])
	}
	cfg = CollectorConfig{
		HOP:   4,
		Table: tc.Table(),
		PathID: func(key packet.PathKey) receipt.PathID {
			return receipt.PathID{Key: key, PrevHOP: 3, NextHOP: 5, MaxDiffNS: 3_000_000}
		},
		Sampling:    DefaultSamplingConfig(),
		Aggregation: DefaultAggregationConfig(),
	}
	return batches, int64(len(obs)) * 10_000, cfg
}

// TestObserveBatchSteadyStateZeroAlloc is the zero-alloc bar of the
// wire-speed hot path: after warmup (path state created, scratch
// buffers grown, one Drain/Recycle round trip), feeding the sharded
// collector allocates at most AllocsPerPktBudget per packet.
func TestObserveBatchSteadyStateZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	const npkts = 20_000
	for _, shards := range []int{1, 2} {
		batches, span, cfg := hotpathWorkload(t, npkts)
		cfg.Shards = shards
		col, err := NewShardedCollector(cfg)
		if err != nil {
			t.Fatal(err)
		}
		feed := func() {
			for _, b := range batches {
				for i := range b {
					b[i].TimeNS += span
				}
				col.ObserveBatch(b)
			}
		}
		// Warmup covers more feed passes than the measurement will run,
		// so every accumulator reaches its steady-state capacity, then
		// one Drain/Recycle round trip re-arms the spare buffers.
		for i := 0; i < 8; i++ {
			feed()
		}
		samples, aggs := col.Drain()
		col.Recycle(samples, aggs)

		const runs = 3
		allocs := testing.AllocsPerRun(runs, feed)
		perPkt := allocs / float64(npkts)
		t.Logf("shards=%d: %.1f allocs/run over %d pkts = %.6f allocs/pkt", shards, allocs, npkts, perPkt)
		if perPkt > AllocsPerPktBudget {
			t.Errorf("shards=%d: steady-state allocations %.6f/pkt exceed budget %.4f", shards, perPkt, AllocsPerPktBudget)
		}
	}
}

// sketchConfigFor builds a sketch-backend variant of cfg.
func sketchConfigFor(cfg CollectorConfig, keepRate float64) CollectorConfig {
	cfg.Backend = BackendSketch
	cfg.Sketch = streamagg.Config{
		KeepRate:    keepRate,
		Salt:        0x5eed_cafe,
		MarkerRate:  cfg.Sampling.MarkerRate,
		SketchCells: 512,
		SketchSeed:  7,
	}
	return cfg
}

// TestSketchBackendKeepAllByteIdentical: with KeepRate = 1 the sketch
// backend must emit receipts byte-identical to the exact backend — the
// streaming state rides alongside without perturbing the receipt
// stream.
func TestSketchBackendKeepAllByteIdentical(t *testing.T) {
	batches, _, cfg := hotpathWorkload(t, 40_000)
	exact, err := NewCollector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := NewCollector(sketchConfigFor(cfg, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		exact.ObserveBatch(b)
		sk.ObserveBatch(b)
	}
	es, ea := exact.Flush()
	ss, sa := sk.Flush()
	if !bytes.Equal(encodeReceipts(es, ea), encodeReceipts(ss, sa)) {
		t.Fatal("KeepRate=1 sketch backend receipts differ from exact backend")
	}
	sketches := sk.DrainSketches()
	if len(sketches) == 0 {
		t.Fatal("sketch backend sealed no sketches")
	}
	// Every retained record was also fed to the streaming state.
	total := uint64(0)
	for _, ps := range sketches {
		total += ps.Sampled
		sk.SketchPool().Put(ps)
	}
	var retained uint64
	for _, r := range ss {
		retained += uint64(len(r.Samples))
	}
	if total != retained {
		t.Fatalf("sketches saw %d records, receipts retained %d", total, retained)
	}
	if exact.DrainSketches() != nil {
		t.Fatal("exact backend produced sketches")
	}
}

// TestSketchBackendThinnedSubset: with KeepRate < 1 the retained
// records are exactly the exact backend's records filtered through the
// system-wide KeepFilter (markers always kept), and each path's sketch
// counted the full pre-thinning sampled set — serial and sharded
// agreeing byte-for-byte.
func TestSketchBackendThinnedSubset(t *testing.T) {
	const keepRate = 0.25
	batches, _, cfg := hotpathWorkload(t, 40_000)
	exact, err := NewCollector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := NewCollector(sketchConfigFor(cfg, keepRate))
	if err != nil {
		t.Fatal(err)
	}
	shardedCfg := sketchConfigFor(cfg, keepRate)
	shardedCfg.Shards = 4
	sharded, err := NewShardedCollector(shardedCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		exact.ObserveBatch(b)
		serial.ObserveBatch(b)
		sharded.ObserveBatch(b)
	}
	es, _ := exact.Flush()
	ss, sa := serial.Flush()
	hs, ha := sharded.Flush()
	if !bytes.Equal(encodeReceipts(ss, sa), encodeReceipts(hs, ha)) {
		t.Fatal("sketch-backend receipts differ between serial and sharded")
	}

	// Thinned receipts must equal the exact records passed through the
	// same filter every HOP applies.
	f := streamagg.NewKeepFilter(keepRate, 0x5eed_cafe, cfg.Sampling.MarkerRate)
	exactByPath := map[receipt.PathID][]receipt.SampleRecord{}
	for _, r := range es {
		exactByPath[r.Path] = r.Samples
	}
	var thinnedWant int
	for _, r := range ss {
		want := make([]receipt.SampleRecord, 0, len(r.Samples))
		for _, rec := range exactByPath[r.Path] {
			if f.Keep(rec.PktID) {
				want = append(want, rec)
			}
		}
		thinnedWant += len(want)
		if len(want) != len(r.Samples) {
			t.Fatalf("path %v: retained %d records, want %d", r.Path, len(r.Samples), len(want))
		}
		for i := range want {
			if want[i] != r.Samples[i] {
				t.Fatalf("path %v record %d: %+v != %+v", r.Path, i, r.Samples[i], want[i])
			}
		}
	}
	var exactTotal int
	for _, recs := range exactByPath {
		exactTotal += len(recs)
	}
	if thinnedWant >= exactTotal {
		t.Fatalf("thinning kept everything (%d of %d): keepRate not exercised", thinnedWant, exactTotal)
	}

	// Sketches count the pre-thinning sampled set.
	serialSketches := serial.DrainSketches()
	shardedSketches := sharded.DrainSketches()
	if len(serialSketches) != len(shardedSketches) {
		t.Fatalf("sketch counts differ: %d vs %d", len(serialSketches), len(shardedSketches))
	}
	for i, ps := range serialSketches {
		hp := shardedSketches[i]
		if ps.Path != hp.Path || ps.Sampled != hp.Sampled {
			t.Fatalf("sketch %d differs: serial %v/%d sharded %v/%d", i, ps.Path, ps.Sampled, hp.Path, hp.Sampled)
		}
		if want := uint64(len(exactByPath[ps.Path])); ps.Sampled != want {
			t.Fatalf("path %v: sketch counted %d sampled, exact retained %d", ps.Path, ps.Sampled, want)
		}
		serial.SketchPool().Put(ps)
		sharded.SketchPool().Put(hp)
	}
}
