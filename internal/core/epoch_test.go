package core

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"vpm/internal/lossmodel"
	"vpm/internal/netsim"
	"vpm/internal/packet"
	"vpm/internal/quantile"
	"vpm/internal/receipt"
	"vpm/internal/stats"
	"vpm/internal/trace"
)

func TestEpochConfigValidation(t *testing.T) {
	good := EpochConfig{IntervalNS: 1e8, Retention: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		cfg  EpochConfig
		want string
	}{
		{"zero interval", EpochConfig{IntervalNS: 0, Retention: 1}, "interval"},
		{"negative interval", EpochConfig{IntervalNS: -5, Retention: 1}, "interval"},
		{"zero retention", EpochConfig{IntervalNS: 1e8, Retention: 0}, "retention"},
		{"negative workers", EpochConfig{IntervalNS: 1e8, Retention: 1, Workers: -1}, "worker"},
		{"negative shards", EpochConfig{IntervalNS: 1e8, Retention: 1, Shards: -2}, "shard"},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if err == nil {
			t.Errorf("%s: expected an error", c.name)
			continue
		}
		//lint:ignore errwrap validation errors are ad hoc, no sentinel exists; the test pins the diagnostic wording
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestDeployConfigValidation(t *testing.T) {
	if err := DefaultDeployConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	mut := func(f func(*DeployConfig)) DeployConfig {
		dc := DefaultDeployConfig()
		f(&dc)
		return dc
	}
	cases := []struct {
		name string
		cfg  DeployConfig
		want string
	}{
		{"zero marker rate", mut(func(d *DeployConfig) { d.MarkerRate = 0 }), "marker rate"},
		{"negative window", mut(func(d *DeployConfig) { d.WindowNS = -1 }), "window"},
		{"negative shards", mut(func(d *DeployConfig) { d.Shards = -3 }), "shard"},
		{"bad default sampling", mut(func(d *DeployConfig) { d.Default.SampleRate = 1.5 }), "sampling rate"},
		{"zero default agg", mut(func(d *DeployConfig) { d.Default.AggRate = 0 }), "aggregation rate"},
		{"bad per-domain", mut(func(d *DeployConfig) {
			d.PerDomain = map[string]Tuning{"X": {SampleRate: -0.1, AggRate: 0.001}}
		}), `domain "X"`},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if err == nil {
			t.Errorf("%s: expected an error", c.name)
			continue
		}
		//lint:ignore errwrap validation errors are ad hoc, no sentinel exists; the test pins the diagnostic wording
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
		// NewDeployment must reject it too, with the same diagnostic.
		if _, err2 := NewDeployment(netsim.Fig1Path(1), equivTraceConfig(1, 1000, 1e7).Table(), c.cfg); err2 == nil {
			t.Errorf("%s: NewDeployment accepted an invalid config", c.name)
		}
	}
}

// epochRecorder is an EpochSink that retains every sealed epoch, safe
// for the concurrent per-HOP replay goroutines.
type epochRecorder struct {
	mu     sync.Mutex
	byHOP  map[receipt.HOPID][]sealedEpoch
	sealed int
}

type sealedEpoch struct {
	epoch   EpochID
	samples []receipt.SampleReceipt
	aggs    []receipt.AggReceipt
}

func newEpochRecorder() *epochRecorder {
	return &epochRecorder{byHOP: make(map[receipt.HOPID][]sealedEpoch)}
}

func (r *epochRecorder) sink(hop receipt.HOPID, epoch EpochID, samples []receipt.SampleReceipt, aggs []receipt.AggReceipt) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byHOP[hop] = append(r.byHOP[hop], sealedEpoch{epoch, samples, aggs})
	r.sealed++
}

// runEpochDeployment replays pkts over the same Fig1 path and config
// as runDeployment, but through an EpochDriver rotating every
// intervalNS, recording each HOP's sealed epochs.
func runEpochDeployment(t testing.TB, tc trace.Config, pkts [][]packet.Packet, intervalNS int64) (*Deployment, *epochRecorder) {
	t.Helper()
	path := netsim.Fig1Path(77)
	dep, err := NewDeployment(path, tc.Table(), DefaultDeployConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := newEpochRecorder()
	driver, err := NewEpochDriver(dep, intervalNS, rec.sink)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := netsim.NewRunner(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range pkts {
		if _, err := runner.Run(chunk, driver.Observers()); err != nil {
			t.Fatal(err)
		}
	}
	driver.Close()
	return dep, rec
}

// TestRotationRepackagesWithoutChangingReceipts is the epoch-boundary
// receipt check: replaying the same trace one-shot and across rotated
// epochs yields the same receipts at every HOP — every record lands in
// exactly one epoch (concatenating the epochs reproduces the one-shot
// stream byte for byte, so nothing is dropped or duplicated at a
// boundary), with open aggregates carrying across rotations to the
// epoch where they close.
func TestRotationRepackagesWithoutChangingReceipts(t *testing.T) {
	tc := equivTraceConfig(2, 40_000, int64(4e8)) // ~16k packets, 2 paths
	pkts, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	const intervalNS = int64(5e7) // 8 epochs of 50 ms

	oneShot, _ := runDeployment(t, tc, pkts, 1)
	_, rec := runEpochDeployment(t, tc, [][]packet.Packet{pkts}, intervalNS)

	for id, proc := range oneShot.Processors {
		sealed := rec.byHOP[id]
		if len(sealed) == 0 {
			t.Fatalf("%v sealed no epochs", id)
		}
		// Epochs must arrive in order, each exactly once.
		for i, se := range sealed {
			if se.epoch != EpochID(i) {
				t.Fatalf("%v: sealed epoch %d at position %d", id, se.epoch, i)
			}
		}
		// Concatenating the sealed epochs must reproduce the one-shot
		// receipt stream byte for byte. Sample receipts are per-epoch
		// slices of the same per-path record streams, so compare the
		// flattened per-path record sequence.
		var gotSamples []receipt.SampleReceipt
		var gotAggs []receipt.AggReceipt
		for _, se := range sealed {
			gotSamples = append(gotSamples, se.samples...)
			gotAggs = append(gotAggs, se.aggs...)
		}
		got := encodeReceipts(mergeByPath(gotSamples), gotAggs)
		want := encodeReceipts(mergeByPath(proc.Samples), proc.Aggs)
		if !bytes.Equal(got, want) {
			t.Errorf("%v: epoch-concatenated receipts differ from one-shot (got %d bytes, want %d)",
				id, len(got), len(want))
		}
	}
}

// mergeByPath combines sample receipts per PathID preserving record
// order, normalizing the per-epoch receipt splitting.
func mergeByPath(in []receipt.SampleReceipt) []receipt.SampleReceipt {
	idx := make(map[receipt.PathID]int)
	var out []receipt.SampleReceipt
	for _, r := range in {
		if i, ok := idx[r.Path]; ok {
			out[i].Samples = append(out[i].Samples, r.Samples...)
			continue
		}
		idx[r.Path] = len(out)
		cp := receipt.SampleReceipt{Path: r.Path}
		cp.Samples = append(cp.Samples, r.Samples...)
		out = append(out, cp)
	}
	return out
}

// verdictFingerprint renders every per-key link verdict and domain
// report over a store, for byte-identical comparison.
func verdictFingerprint(t *testing.T, dep *Deployment, store *ReceiptStore) string {
	t.Helper()
	var b strings.Builder
	for _, key := range store.Keys() {
		v := dep.NewVerifierOn(store, key)
		fmt.Fprintf(&b, "key %v\n", key)
		for _, lv := range v.VerifyAllLinks() {
			fmt.Fprintf(&b, "  %+v\n", lv)
		}
		reps, err := v.DomainReports(quantile.DefaultQuantiles, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		for _, rep := range reps {
			fmt.Fprintf(&b, "  %+v\n", rep)
		}
	}
	return b.String()
}

// TestBatchContinuousEquivalence is the acceptance check of continuous
// operation: the same Fig1 trace replayed one-shot and across 8
// rotated epochs produces byte-identical aggregate verdicts — link
// verdicts and domain reports, including violation order — when the
// per-epoch receipts are ingested into one store.
func TestBatchContinuousEquivalence(t *testing.T) {
	tc := equivTraceConfig(2, 40_000, int64(4e8))
	pkts, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	const intervalNS = int64(5e7) // 8 epochs

	oneShot, _ := runDeployment(t, tc, pkts, 1)
	want := verdictFingerprint(t, oneShot, oneShot.NewStore())

	epoched, rec := runEpochDeployment(t, tc, [][]packet.Packet{pkts}, intervalNS)
	agg := NewReceiptStore()
	for hop, sealed := range rec.byHOP {
		for _, se := range sealed {
			for _, s := range se.samples {
				agg.AddSamples(hop, s)
			}
			agg.AddAggs(hop, se.aggs)
		}
	}
	got := verdictFingerprint(t, epoched, agg)

	if got != want {
		t.Fatalf("aggregate verdicts differ between one-shot and %d rotated epochs:\none-shot:\n%s\ncontinuous:\n%s",
			8, want, got)
	}
	if !strings.Contains(want, "matched") && len(want) == 0 {
		t.Fatal("empty fingerprint — the comparison proved nothing")
	}
}

// TestEpochCollectorIdleIntervals: a traffic gap spanning several
// intervals seals the idle epochs as empty rather than skipping them.
func TestEpochCollectorIdleIntervals(t *testing.T) {
	tc := equivTraceConfig(1, 1000, 1e7)
	col, err := NewCollector(CollectorConfig{
		HOP:         1,
		Table:       tc.Table(),
		PathID:      func(key packet.PathKey) receipt.PathID { return receipt.PathID{Key: key} },
		Sampling:    DefaultSamplingConfig(),
		Aggregation: DefaultAggregationConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := newEpochRecorder()
	ec, err := NewEpochCollector(col, 100, rec.sink)
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	p := &pkts[0]
	digest := uint64(1)        // below any marker threshold: buffers quietly
	ec.Observe(p, digest, 50)  // epoch 0
	ec.Observe(p, digest, 450) // jumps to epoch 4: seals 0..3
	ec.Close()                 // seals epoch 4
	if got := len(rec.byHOP[1]); got != 5 {
		t.Fatalf("expected 5 sealed epochs (4 rotations + terminal), got %d", got)
	}
	for i, se := range rec.byHOP[1] {
		if se.epoch != EpochID(i) {
			t.Fatalf("epoch %d sealed out of order at %d", se.epoch, i)
		}
	}
}

func TestWindowedStoreLifecycle(t *testing.T) {
	if _, err := NewWindowedStore(nil, 1); err == nil {
		t.Fatal("expected error for empty HOP set")
	}
	if _, err := NewWindowedStore([]receipt.HOPID{1}, 0); err == nil {
		t.Fatal("expected error for zero retention")
	}

	hops := []receipt.HOPID{1, 2}
	win, err := NewWindowedStore(hops, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 0 sealed by HOP 1 only: not ready.
	if err := win.IngestSealed(1, 0, nil, nil); err != nil {
		t.Fatal(err)
	}
	if r := win.Ready(); len(r) != 0 {
		t.Fatalf("half-sealed epoch reported ready: %v", r)
	}
	// Fully sealed, but the successor epoch is not: still not ready —
	// epoch 1 holds the downstream half of epoch 0's boundary spill.
	if err := win.IngestSealed(2, 0, nil, nil); err != nil {
		t.Fatal(err)
	}
	if r := win.Ready(); len(r) != 0 {
		t.Fatalf("epoch without sealed successor reported ready: %v", r)
	}

	// Seal epochs 1..5 fully: 0..4 become ready (5 waits for epoch 6).
	for e := EpochID(1); e <= 5; e++ {
		for _, h := range hops {
			if err := win.IngestSealed(h, e, nil, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	if r := win.Ready(); len(r) != 5 || r[0] != 0 || r[4] != 4 {
		t.Fatalf("expected epochs 0..4 ready, got %v", r)
	}

	// Verify all but epoch 2.
	for _, e := range []EpochID{0, 1, 3, 4, 5} {
		if err := win.MarkVerified(e); err != nil {
			t.Fatal(err)
		}
	}

	// Eviction horizon is maxSealed(5) − retention(1) = 4. Epoch 0
	// (verified, successor 1 verified) and epoch 3 (successor 4
	// verified) go; epoch 2 is old but UNVERIFIED and must survive,
	// and epoch 1 must survive too — it is unverified epoch 2's
	// lookback evidence.
	evicted := win.Evict()
	if evicted != 2 {
		t.Fatalf("expected 2 evictions, got %d", evicted)
	}
	st := win.Stats()
	if st.Segments != 4 || st.OldestHeld != 1 || st.NewestHeld != 5 {
		t.Fatalf("unexpected window after eviction: %+v", st)
	}
	if !win.Holds(2) {
		t.Fatal("unverified epoch 2 was dropped")
	}

	// Once epoch 2 is verified, it and its predecessor age out.
	if err := win.MarkVerified(2); err != nil {
		t.Fatal(err)
	}
	if n := win.Evict(); n != 2 {
		t.Fatalf("expected epochs 1 and 2 to be evicted after verification, got %d evictions", n)
	}

	// FinishStream releases the terminal epoch.
	win.FinishStream()
	if r := win.Ready(); len(r) != 0 {
		t.Fatalf("no unverified epochs should remain ready, got %v", r)
	}

	// Late receipts for an evicted epoch are refused, not silently
	// re-opened.
	if err := win.IngestSealed(1, 0, nil, nil); err == nil {
		t.Fatal("expected error ingesting into an evicted epoch")
	}
	if err := win.SealHOP(1, 1); err == nil {
		t.Fatal("expected error sealing an evicted epoch")
	}
	if err := win.MarkVerified(99); err == nil {
		t.Fatal("expected error verifying a segment that never existed")
	}
	if _, err := win.View(99); err == nil {
		t.Fatal("expected error viewing a segment that never existed")
	}
}

// TestWindowBoundedUnderRetention is the bounded-memory assertion: a
// long run (40 epochs) with retention 2 never holds more than
// retention + 2 segments (the retained window, the epoch being
// verified, and the epoch being ingested), no matter how many epochs
// have passed.
func TestWindowBoundedUnderRetention(t *testing.T) {
	hops := []receipt.HOPID{1, 2, 3}
	const retention = 2
	win, err := NewWindowedStore(hops, retention)
	if err != nil {
		t.Fatal(err)
	}
	const epochs = 40
	maxHeld := 0
	for e := EpochID(0); e < epochs; e++ {
		for _, h := range hops {
			if err := win.IngestSealed(h, e, nil, nil); err != nil {
				t.Fatal(err)
			}
		}
		for _, r := range win.Ready() {
			if err := win.MarkVerified(r); err != nil {
				t.Fatal(err)
			}
		}
		win.Evict()
		if st := win.Stats(); st.Segments > maxHeld {
			maxHeld = st.Segments
		}
	}
	if bound := retention + 2; maxHeld > bound {
		t.Fatalf("window grew to %d segments; bound is %d", maxHeld, bound)
	}
	st := win.Stats()
	if st.Evicted != epochs-uint64(st.Segments) {
		t.Fatalf("eviction accounting off: %+v after %d epochs", st, epochs)
	}
}

// TestRollingVerifierMatchesBatchPerEpochSum: rolling verification
// over the windowed segments visits every receipt exactly once — the
// per-epoch matched-sample totals sum to the count obtained by
// verifying each epoch's receipts directly.
func TestRollingVerifierReportsEpochs(t *testing.T) {
	tc := equivTraceConfig(1, 20_000, int64(2e8))
	pkts, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	const intervalNS = int64(5e7) // 4 epochs

	path := netsim.Fig1Path(77)
	dep, err := NewDeployment(path, tc.Table(), DefaultDeployConfig())
	if err != nil {
		t.Fatal(err)
	}
	var hops []receipt.HOPID
	for id := range dep.Collectors {
		hops = append(hops, id)
	}
	win, err := NewWindowedStore(hops, 2)
	if err != nil {
		t.Fatal(err)
	}
	driver, err := NewEpochDriver(dep, intervalNS, win.Sink())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := path.Run(pkts, driver.Observers()); err != nil {
		t.Fatal(err)
	}
	terminal := driver.Close()
	win.FinishStream()

	rolling := NewRollingVerifier(dep.Layout(), dep.VerifierConfig(), win, nil, 0)
	reps, err := rolling.VerifyReady()
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != int(terminal)+1 {
		t.Fatalf("expected %d epoch reports, got %d", terminal+1, len(reps))
	}
	var matched int64
	for i, rep := range reps {
		if rep.Epoch != EpochID(i) {
			t.Fatalf("report %d is for epoch %d", i, rep.Epoch)
		}
		matched += rep.MatchedSamples()
		if rep.Violations() != 0 {
			t.Fatalf("healthy path produced violations in epoch %d", rep.Epoch)
		}
	}
	if matched == 0 {
		t.Fatal("no matched samples across any epoch — the workload proved nothing")
	}
	// Each sample is claimed by exactly one epoch, so the per-epoch
	// matched counts sum to the one-shot total.
	oneShot, _ := runDeployment(t, tc, pkts, 1)
	store := oneShot.NewStore()
	var batchMatched int64
	for _, key := range store.Keys() {
		v := oneShot.NewVerifierOn(store, key)
		for _, lv := range v.VerifyAllLinks() {
			batchMatched += int64(lv.MatchedSamples)
		}
	}
	if matched != batchMatched {
		t.Fatalf("per-epoch matched samples sum to %d, one-shot matched %d", matched, batchMatched)
	}
	// Everything verified: nothing left in the Ready queue, and a
	// second sweep is a no-op.
	if r := win.Ready(); len(r) != 0 {
		t.Fatalf("epochs still ready after verification: %v", r)
	}
}

// TestRollingVerifierFlagsFaultyLink: continuous operation must still
// expose what batch verification exposes — a lossy inter-domain link
// produces missing-record violations in the per-epoch reports of the
// epochs whose traffic it dropped.
func TestRollingVerifierFlagsFaultyLink(t *testing.T) {
	tc := equivTraceConfig(1, 20_000, int64(2e8))
	pkts, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	const intervalNS = int64(5e7)

	path := netsim.Fig1Path(77)
	// Heavy loss on the L→X link (between domains 1 and 2).
	ge, err := lossmodel.FromTargetLoss(0.3, 4, stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	path.Links[1].Loss = ge
	dc := DefaultDeployConfig()
	dc.Default.SampleRate = 0.05 // dense enough that every epoch sees the hole
	dep, err := NewDeployment(path, tc.Table(), dc)
	if err != nil {
		t.Fatal(err)
	}
	var hops []receipt.HOPID
	for id := range dep.Collectors {
		hops = append(hops, id)
	}
	win, err := NewWindowedStore(hops, 2)
	if err != nil {
		t.Fatal(err)
	}
	driver, err := NewEpochDriver(dep, intervalNS, win.Sink())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := path.Run(pkts, driver.Observers()); err != nil {
		t.Fatal(err)
	}
	driver.Close()
	win.FinishStream()

	rolling := NewRollingVerifier(dep.Layout(), dep.VerifierConfig(), win, nil, 0)
	reps, err := rolling.VerifyReady()
	if err != nil {
		t.Fatal(err)
	}
	flagged := 0
	for _, rep := range reps {
		for _, k := range rep.Keys {
			for _, lv := range k.Links {
				if lv.LinkID == 1 && !lv.Consistent() {
					flagged++
				} else if lv.LinkID != 1 && !lv.Consistent() {
					t.Fatalf("epoch %d: healthy link %v-%v flagged: %v",
						rep.Epoch, lv.Up, lv.Down, lv.Violations[0])
				}
			}
		}
	}
	if flagged < 2 {
		t.Fatalf("lossy link flagged in only %d epoch reports", flagged)
	}
}
