package core

import (
	"fmt"
	"sort"

	"vpm/internal/netsim"
	"vpm/internal/packet"
	"vpm/internal/receipt"
)

// This file adds the continuous-operation lifecycle to the collection
// pipeline. The paper's protocol is interval-based — HOPs emit marker
// receipts per time interval and domains are judged per interval — so
// a production deployment never runs as a one-shot batch: it rotates
// through an endless stream of epochs, sealing each one's receipts
// while ingest of the next continues.
//
// The load-bearing invariant: **rotation never changes the receipt
// stream, only its packaging.** RotateInterval drains the receipts
// finalized during the closing epoch (Drain semantics) without forcing
// any state to finalize early: an open aggregate keeps counting across
// the boundary and lands in the epoch where its cutting point closes
// it; a packet waiting in the Algorithm 1 temporary buffer is decided
// by the next marker and lands in that marker's epoch. Concatenating
// every epoch's receipts therefore reproduces, byte for byte, the
// receipt stream a one-shot run would have flushed — verified by
// TestBatchContinuousEquivalence.

// EpochID is the ordinal of one reporting interval. Epoch e covers
// local observation times [e·interval, (e+1)·interval).
type EpochID uint64

// EpochConfig parameterizes continuous multi-interval operation: the
// epoch clock, the receipt-retention window, and the parallelism of
// the two pipelines it drives.
type EpochConfig struct {
	// IntervalNS is the epoch length in simulated nanoseconds — the
	// paper's reporting interval.
	IntervalNS int64
	// Retention is how many sealed-and-verified epochs the windowed
	// receipt store keeps before eviction (the GC N−k knob). Unverified
	// epochs are never evicted regardless of age.
	Retention int
	// Workers sizes the verifier worker pools (VerifierConfig.Workers):
	// 0 = GOMAXPROCS, 1 = serial.
	Workers int
	// Shards selects each HOP collector's parallelism
	// (DeployConfig.Shards): 0 = GOMAXPROCS, 1 = serial.
	Shards int
}

// Validate rejects configurations that would silently misbehave: a
// zero or negative interval never rotates, retention below one epoch
// would evict the epoch currently being verified, and negative
// worker or shard counts have no meaning.
func (c EpochConfig) Validate() error {
	if c.IntervalNS <= 0 {
		return fmt.Errorf("core: epoch interval %dns must be positive", c.IntervalNS)
	}
	if c.Retention < 1 {
		return fmt.Errorf("core: retention %d epochs is below the 1-epoch minimum", c.Retention)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: negative verifier worker count %d", c.Workers)
	}
	if c.Shards < 0 {
		return fmt.Errorf("core: negative collector shard count %d", c.Shards)
	}
	return nil
}

// RotateInterval seals the collector's current epoch: it drains the
// receipts finalized during it (in deterministic PathID-sorted order,
// like Drain) and opens the next epoch. Open aggregates and pending
// sampler buffers carry across the rotation untouched, so the
// concatenation of every epoch's receipts is byte-identical to a
// one-shot run's.
func (c *Collector) RotateInterval() (EpochID, []receipt.SampleReceipt, []receipt.AggReceipt) {
	e := c.epoch
	c.epoch++
	samples, aggs := c.Drain()
	return e, samples, aggs
}

// CloseEpoch finalizes all open state into the collector's current
// epoch and returns it — the terminal rotation at end of stream.
func (c *Collector) CloseEpoch() (EpochID, []receipt.SampleReceipt, []receipt.AggReceipt) {
	e := c.epoch
	c.epoch++
	samples, aggs := c.Flush()
	return e, samples, aggs
}

// Epoch returns the collector's current (open) epoch ordinal.
func (c *Collector) Epoch() EpochID { return c.epoch }

// RotateInterval seals the sharded collector's current epoch across
// all shards; see Collector.RotateInterval.
func (c *ShardedCollector) RotateInterval() (EpochID, []receipt.SampleReceipt, []receipt.AggReceipt) {
	e := c.epoch
	c.epoch++
	samples, aggs := c.Drain()
	return e, samples, aggs
}

// CloseEpoch finalizes all shards' open state into the current epoch —
// the terminal rotation at end of stream.
func (c *ShardedCollector) CloseEpoch() (EpochID, []receipt.SampleReceipt, []receipt.AggReceipt) {
	e := c.epoch
	c.epoch++
	samples, aggs := c.Flush()
	return e, samples, aggs
}

// Epoch returns the sharded collector's current (open) epoch ordinal.
func (c *ShardedCollector) Epoch() EpochID { return c.epoch }

// EpochSink receives one HOP's sealed epoch: every receipt the HOP
// finalized during that interval. The EpochDriver invokes it from the
// goroutine replaying that HOP's observations, so distinct HOPs' sinks
// run concurrently — implementations must be safe for concurrent use
// (WindowedStore.IngestSealed is). Within one HOP, epochs arrive in
// chronological order.
type EpochSink func(hop receipt.HOPID, epoch EpochID, samples []receipt.SampleReceipt, aggs []receipt.AggReceipt)

// EpochCollector wraps one HOP's collector in an epoch clock: it
// forwards observations untouched, and when an observation's local
// timestamp crosses the current epoch's end it rotates the underlying
// collector and hands the sealed epoch to the sink. Epochs are local —
// each HOP rotates on its own (possibly skewed) observation clock,
// exactly as a real deployment's HOPs rotate on their own NTP-
// disciplined clocks.
type EpochCollector struct {
	col        PathCollector
	sink       EpochSink
	intervalNS int64
	end        int64 // current epoch's end time (exclusive)
	closed     bool
	terminal   EpochID // last sealed epoch, valid once closed
}

// NewEpochCollector wraps col with an epoch clock of the given
// interval. Epoch 0 covers observation times (-inf, intervalNS): skew
// may pull a HOP's first observations slightly negative, and they
// belong to the first interval, not an unreachable "epoch -1".
func NewEpochCollector(col PathCollector, intervalNS int64, sink EpochSink) (*EpochCollector, error) {
	if intervalNS <= 0 {
		return nil, fmt.Errorf("core: epoch interval %dns must be positive", intervalNS)
	}
	if sink == nil {
		return nil, fmt.Errorf("core: epoch collector needs a sink")
	}
	return &EpochCollector{col: col, sink: sink, intervalNS: intervalNS, end: intervalNS}, nil
}

// HOP returns the wrapped collector's HOP identity.
func (e *EpochCollector) HOP() receipt.HOPID { return e.col.HOP() }

// rotateTo rotates (possibly several times, emitting empty epochs for
// idle intervals) until t falls inside the open epoch.
func (e *EpochCollector) rotateTo(t int64) {
	for t >= e.end {
		epoch, samples, aggs := e.col.RotateInterval()
		e.sink(e.col.HOP(), epoch, samples, aggs)
		e.end += e.intervalNS
	}
}

// Observe forwards one observation, rotating first if its timestamp
// has crossed into a later epoch.
func (e *EpochCollector) Observe(pkt *packet.Packet, digest uint64, tNS int64) {
	e.rotateTo(tNS)
	e.col.Observe(pkt, digest, tNS)
}

// ObserveBatch forwards an arrival-ordered batch, splitting it at
// every epoch boundary it straddles so each sub-batch lands in the
// epoch its timestamps belong to.
func (e *EpochCollector) ObserveBatch(batch []netsim.Observation) {
	for len(batch) > 0 {
		if last := batch[len(batch)-1].TimeNS; last < e.end {
			e.col.ObserveBatch(batch)
			return
		}
		// Find the first observation at or past the boundary. Replay
		// timestamps may regress slightly under jitter, so split at the
		// first crossing rather than binary-searching.
		i := 0
		for i < len(batch) && batch[i].TimeNS < e.end {
			i++
		}
		if i > 0 {
			e.col.ObserveBatch(batch[:i])
		}
		batch = batch[i:]
		if len(batch) > 0 {
			e.rotateTo(batch[0].TimeNS)
		}
	}
}

// Close seals the final, partially elapsed epoch: it flushes all open
// collector state and hands the terminal epoch to the sink. Call once,
// after the last observation. Returns the sealed terminal epoch.
func (e *EpochCollector) Close() EpochID {
	if e.closed {
		return e.terminal
	}
	e.closed = true
	epoch, samples, aggs := e.col.CloseEpoch()
	e.sink(e.col.HOP(), epoch, samples, aggs)
	e.terminal = epoch
	return epoch
}

// sealEmptyThrough emits empty epochs after Close so every HOP of a
// deployment ends on the same terminal epoch: propagation delay means
// a downstream HOP's observation clock runs a few milliseconds behind
// the source's, so at shutdown the HOPs' epoch counters can differ by
// one. The trailing HOPs report empty intervals — receipts for traffic
// that never reached them cannot exist — which lets the final epoch
// seal across all HOPs and be verified.
func (e *EpochCollector) sealEmptyThrough(last EpochID) {
	for e.terminal < last {
		e.terminal++
		e.sink(e.col.HOP(), e.terminal, nil, nil)
	}
}

// EpochDriver runs a whole Deployment continuously: every HOP's
// collector is wrapped in an EpochCollector sharing one interval and
// one sink. Pass Observers() to the simulator (one run or many
// consecutive segments), then Close() after the last segment to seal
// the terminal epochs.
type EpochDriver struct {
	dep  *Deployment
	cols map[receipt.HOPID]*EpochCollector
}

// NewEpochDriver wraps every collector of dep in an epoch clock of the
// given interval feeding sink.
func NewEpochDriver(dep *Deployment, intervalNS int64, sink EpochSink) (*EpochDriver, error) {
	hops := make([]receipt.HOPID, 0, len(dep.Collectors))
	for id := range dep.Collectors {
		hops = append(hops, id)
	}
	sort.Slice(hops, func(i, j int) bool { return hops[i] < hops[j] })
	return NewEpochDriverFor(dep, hops, intervalNS, sink)
}

// NewEpochDriverFor wraps only the named HOPs' collectors of dep — the
// slice of the deployment one fleet collector process drives, when the
// deployment's HOPs are split across per-domain processes. Every named
// HOP must have a collector in dep. Distinct processes driving
// disjoint HOP subsets of the same deterministic world produce, in
// union, exactly the epochs one whole-deployment driver would.
func NewEpochDriverFor(dep *Deployment, hops []receipt.HOPID, intervalNS int64, sink EpochSink) (*EpochDriver, error) {
	d := &EpochDriver{dep: dep, cols: make(map[receipt.HOPID]*EpochCollector, len(hops))}
	for _, id := range hops {
		col, ok := dep.Collectors[id]
		if !ok {
			return nil, fmt.Errorf("core: epoch driver: deployment has no collector for %v", id)
		}
		ec, err := NewEpochCollector(col, intervalNS, sink)
		if err != nil {
			return nil, err
		}
		d.cols[id] = ec
	}
	return d, nil
}

// Observers adapts the epoch-wrapped collectors to the simulator.
func (d *EpochDriver) Observers() map[receipt.HOPID]netsim.Observer {
	out := make(map[receipt.HOPID]netsim.Observer, len(d.cols))
	for id, ec := range d.cols {
		out[id] = ec
	}
	return out
}

// Close seals every HOP's terminal epoch and aligns all HOPs onto one
// common terminal (HOPs whose clock had not yet crossed the last
// boundary seal empty intervals). Call once, after the last simulation
// segment has fully replayed. Returns the common terminal epoch.
func (d *EpochDriver) Close() EpochID {
	return d.CloseAt(0)
}

// CloseAt is Close with a floor on the common terminal: every HOP
// seals empty intervals up to at least epoch `last`. A driver covering
// only a HOP subset cannot see the other processes' natural terminals,
// so fleet collectors agree on a spec-derived terminal up front and
// close at it — every process's store then seals the same epoch range
// and the union is verifiable.
func (d *EpochDriver) CloseAt(last EpochID) EpochID {
	for _, ec := range d.cols {
		if t := ec.Close(); t > last {
			last = t
		}
	}
	for _, ec := range d.cols {
		ec.sealEmptyThrough(last)
	}
	return last
}
