// Package core implements VPM itself — the paper's primary
// contribution. It ties the substrate packages together into the
// NetFlow-like monitoring platform of §7:
//
//   - Collector: the data-plane module at a HOP. For every packet it
//     looks up the HOP path, updates the open aggregate receipt
//     (Algorithm 2), and feeds the temporary packet buffer of the
//     bias-resistant delay sampler (Algorithm 1). Its per-packet work
//     is a path lookup, a digest comparison, a counter update and a
//     buffer append — the "three memory accesses, one hash function,
//     and one timestamp computation" budget of §7.1.
//   - Processor: the control-plane module that periodically drains
//     finalized receipts from the collector and accounts for the
//     bandwidth they consume.
//   - Deployment: wires collectors onto every HOP of a simulated path.
//   - Verifier: consumes receipts from all HOPs of a path, estimates
//     each domain's loss (exactly, via the aggregate join) and delay
//     quantiles (probabilistically, via matched samples), and checks
//     inter-domain consistency to expose liars (§4).
//   - Adversary helpers: the receipt-fabrication strategies of the
//     threat model.
package core

import (
	"fmt"

	"vpm/internal/aggregation"
	"vpm/internal/packet"
	"vpm/internal/receipt"
	"vpm/internal/sampling"
)

// CollectorConfig configures one HOP's collector.
type CollectorConfig struct {
	// HOP is the reporting HOP's identity.
	HOP receipt.HOPID
	// Table classifies packet addresses into origin prefixes.
	Table *packet.Table
	// PathID derives the full PathID (prev/next HOP, MaxDiff) this
	// HOP stamps on receipts for a given origin-prefix pair.
	PathID func(key packet.PathKey) receipt.PathID
	// Sampling configures Algorithm 1 (µ is system-wide, σ local).
	Sampling sampling.Config
	// Aggregation configures Algorithm 2 (δ local, J system-wide).
	Aggregation aggregation.Config
}

// Validate checks the configuration.
func (c CollectorConfig) Validate() error {
	if c.Table == nil {
		return fmt.Errorf("core: collector needs a prefix table")
	}
	if c.PathID == nil {
		return fmt.Errorf("core: collector needs a PathID builder")
	}
	if err := c.Sampling.Validate(); err != nil {
		return err
	}
	return c.Aggregation.Validate()
}

// pathState is the collector's per-active-path state: one open
// aggregate receipt and the sampler's temporary buffer (§7.1's
// monitoring-cache entry).
type pathState struct {
	id      receipt.PathID
	sampler *sampling.Sampler
	part    *aggregation.Partitioner
}

// Collector is the data-plane module of one HOP. It implements
// netsim.Observer. Not safe for concurrent use (a real router shards
// by interface; shard collectors the same way).
type Collector struct {
	cfg   CollectorConfig
	paths map[packet.PathKey]*pathState

	observed     uint64
	unclassified uint64
}

// NewCollector builds a collector.
func NewCollector(cfg CollectorConfig) (*Collector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Collector{cfg: cfg, paths: make(map[packet.PathKey]*pathState)}, nil
}

// Observe processes one packet observation: classify, aggregate,
// sample. digest is the packet's 64-bit ID; tNS the HOP's (possibly
// skewed) observation timestamp.
func (c *Collector) Observe(pkt *packet.Packet, digest uint64, tNS int64) {
	c.observed++
	key, ok := c.cfg.Table.Classify(pkt)
	if !ok {
		c.unclassified++
		return
	}
	st, ok := c.paths[key]
	if !ok {
		id := c.cfg.PathID(key)
		st = &pathState{
			id:      id,
			sampler: sampling.New(c.cfg.Sampling),
			part:    aggregation.New(c.cfg.Aggregation, id),
		}
		c.paths[key] = st
	}
	st.part.Observe(digest, tNS)
	st.sampler.Observe(digest, tNS)
}

// HOP returns the collector's HOP identity.
func (c *Collector) HOP() receipt.HOPID { return c.cfg.HOP }

// Drain returns the receipts finalized since the last Drain: one
// sample receipt per active path (possibly empty ones are skipped)
// plus all closed aggregate receipts. The control-plane processor
// calls this periodically.
func (c *Collector) Drain() ([]receipt.SampleReceipt, []receipt.AggReceipt) {
	var samples []receipt.SampleReceipt
	var aggs []receipt.AggReceipt
	for _, st := range c.paths {
		if recs := st.sampler.Take(); len(recs) > 0 {
			samples = append(samples, receipt.SampleReceipt{Path: st.id, Samples: recs})
		}
		aggs = append(aggs, st.part.Take()...)
	}
	return samples, aggs
}

// Flush finalizes all open state (end of reporting period or stream)
// and returns the remaining receipts.
func (c *Collector) Flush() ([]receipt.SampleReceipt, []receipt.AggReceipt) {
	var samples []receipt.SampleReceipt
	var aggs []receipt.AggReceipt
	for _, st := range c.paths {
		aggs = append(aggs, st.part.Flush()...)
		if recs := st.sampler.Take(); len(recs) > 0 {
			samples = append(samples, receipt.SampleReceipt{Path: st.id, Samples: recs})
		}
	}
	return samples, aggs
}

// MemoryStats is the §7.1 memory-budget breakdown of a collector.
type MemoryStats struct {
	// ActivePaths is the number of paths with live state.
	ActivePaths int
	// MonitoringCacheBytes is the per-path open-receipt state: the
	// paper's "PathID, AggID, and PktCnt — roughly 20 bytes" per
	// path, at our encoding's actual size.
	MonitoringCacheBytes int
	// TempBufferPeakEntries is the high-water mark of the delay
	// sampler's temporary packet buffer across paths (entries).
	TempBufferPeakEntries int
	// TempBufferPeakBytes converts the peak to bytes at the wire size
	// of one 〈PktID, Time〉 record.
	TempBufferPeakBytes int
}

// Memory reports the collector's current memory accounting.
func (c *Collector) Memory() MemoryStats {
	m := MemoryStats{ActivePaths: len(c.paths)}
	peak := 0
	for _, st := range c.paths {
		if hw := st.sampler.TempHighWater(); hw > peak {
			peak = hw
		}
	}
	m.MonitoringCacheBytes = len(c.paths) * receipt.BaseAggReceiptBytes
	m.TempBufferPeakEntries = peak
	m.TempBufferPeakBytes = peak * receipt.SampleRecordBytes
	return m
}

// Stats returns (packets observed, packets that matched no prefix).
func (c *Collector) Stats() (observed, unclassified uint64) {
	return c.observed, c.unclassified
}
