// Package core implements VPM itself — the paper's primary
// contribution. It ties the substrate packages together into the
// NetFlow-like monitoring platform of §7:
//
//   - Collector: the data-plane module at a HOP. For every packet it
//     looks up the HOP path, updates the open aggregate receipt
//     (Algorithm 2), and feeds the temporary packet buffer of the
//     bias-resistant delay sampler (Algorithm 1). Its per-packet work
//     is a path lookup, a digest comparison, a counter update and a
//     buffer append — the "three memory accesses, one hash function,
//     and one timestamp computation" budget of §7.1.
//   - Processor: the control-plane module that periodically drains
//     finalized receipts from the collector and accounts for the
//     bandwidth they consume.
//   - Deployment: wires collectors onto every HOP of a simulated path.
//   - Verifier: consumes receipts from all HOPs of a path, estimates
//     each domain's loss (exactly, via the aggregate join) and delay
//     quantiles (probabilistically, via matched samples), and checks
//     inter-domain consistency to expose liars (§4).
//   - Adversary helpers: the receipt-fabrication strategies of the
//     threat model.
package core

import (
	"fmt"
	"sort"

	"vpm/internal/aggregation"
	"vpm/internal/netsim"
	"vpm/internal/packet"
	"vpm/internal/receipt"
	"vpm/internal/sampling"
	"vpm/internal/streamagg"
)

// Backend selects how a collector aggregates sampled delay state.
type Backend int

const (
	// BackendExact (the zero value) retains every sampled record
	// exactly — the verification oracle and the historical default.
	BackendExact Backend = iota
	// BackendSketch thins retained records through a system-wide
	// KeepFilter and maintains pooled streaming summary state
	// (count + IBLT + interarrival histogram) per path, sealed via
	// DrainSketches at epoch close. Receipts still carry the retained
	// subsample, which every HOP computes identically, so the §4
	// record-for-record consistency checks keep working.
	BackendSketch
)

// CollectorConfig configures one HOP's collector.
type CollectorConfig struct {
	// HOP is the reporting HOP's identity.
	HOP receipt.HOPID
	// Table classifies packet addresses into origin prefixes.
	Table *packet.Table
	// PathID derives the full PathID (prev/next HOP, MaxDiff) this
	// HOP stamps on receipts for a given origin-prefix pair. A
	// ShardedCollector invokes it concurrently from its shard
	// goroutines when new paths appear, so the function must be safe
	// for concurrent use (a pure function of key, the common case, is
	// always fine). It must also be injective — distinct keys map to
	// distinct PathIDs (natural, since the PathID embeds the key);
	// collectors assume one PathID names one path when draining.
	PathID func(key packet.PathKey) receipt.PathID
	// Sampling configures Algorithm 1 (µ is system-wide, σ local).
	Sampling sampling.Config
	// Aggregation configures Algorithm 2 (δ local, J system-wide).
	Aggregation aggregation.Config
	// Shards selects the collector parallelism NewPathCollector
	// builds: 0 means auto (GOMAXPROCS), 1 a single-threaded
	// Collector, N ≥ 2 a ShardedCollector with N shards.
	Shards int
	// Backend selects exact sample retention (the zero value) or the
	// streaming sketch backend.
	Backend Backend
	// Sketch configures the streaming backend; only consulted when
	// Backend == BackendSketch.
	Sketch streamagg.Config
	// EvictIdleEpochs, when positive, evicts a path's state after it
	// has seen no observations for that many consecutive Drains: the
	// path's open aggregate is force-flushed into the evicting Drain
	// (its packets are reported exactly once, just on an idle-timeout
	// cut instead of a hash-selected one) and the sampler's stale
	// pre-marker buffer is discarded. This keeps the monitoring cache
	// bounded by the *active* working set under path churn, at the cost
	// of an extra aggregate boundary on idle-then-resumed paths. All
	// HOPs of a deployment must use the same value — they see the same
	// traffic, so they evict the same paths at the same rotations and
	// receipts stay comparable. 0 (the default) never evicts — the
	// historical behavior, and the byte-identity baseline.
	EvictIdleEpochs int
}

// Validate checks the configuration.
func (c CollectorConfig) Validate() error {
	if c.Table == nil {
		return fmt.Errorf("core: collector needs a prefix table")
	}
	if c.PathID == nil {
		return fmt.Errorf("core: collector needs a PathID builder")
	}
	if c.Shards < 0 {
		return fmt.Errorf("core: negative shard count %d", c.Shards)
	}
	if c.EvictIdleEpochs < 0 {
		return fmt.Errorf("core: negative idle-eviction threshold %d", c.EvictIdleEpochs)
	}
	if err := c.Sampling.Validate(); err != nil {
		return err
	}
	if c.Backend == BackendSketch {
		if err := c.Sketch.Validate(); err != nil {
			return err
		}
		if c.Sketch.MarkerRate != c.Sampling.MarkerRate {
			return fmt.Errorf("core: sketch marker rate %v differs from sampling marker rate %v",
				c.Sketch.MarkerRate, c.Sampling.MarkerRate)
		}
	}
	return c.Aggregation.Validate()
}

// PathCollector is the data-plane surface a Deployment drives. Both
// the single-threaded Collector and the hash-partitioned
// ShardedCollector implement it, so everything downstream (Processor,
// Deployment, netsim replay) is agnostic to the sharding choice.
type PathCollector interface {
	netsim.Observer
	netsim.BatchObserver
	// HOP returns the collector's HOP identity.
	HOP() receipt.HOPID
	// Drain returns receipts finalized since the last Drain, in
	// deterministic (PathID-sorted) order.
	Drain() ([]receipt.SampleReceipt, []receipt.AggReceipt)
	// Flush finalizes all open state and returns the remaining
	// receipts, in deterministic order.
	Flush() ([]receipt.SampleReceipt, []receipt.AggReceipt)
	// Epoch returns the current (open) epoch ordinal.
	Epoch() EpochID
	// RotateInterval seals the current epoch — draining the receipts
	// finalized during it, Drain-style — and opens the next. Open
	// aggregates and pending sampler buffers carry across untouched.
	RotateInterval() (EpochID, []receipt.SampleReceipt, []receipt.AggReceipt)
	// CloseEpoch finalizes all open state into the current epoch —
	// the terminal rotation at end of stream (Flush semantics).
	CloseEpoch() (EpochID, []receipt.SampleReceipt, []receipt.AggReceipt)
	// DrainSketches seals and returns the per-path streaming sketches
	// accumulated since the last call, in PathID-sorted order (empty
	// under BackendExact). Return sealed sketches to SketchPool once
	// consumed so epoch rotation stays allocation-free.
	DrainSketches() []*streamagg.PathSketch
	// SketchPool returns the pool sealed sketches should be returned
	// to (nil under BackendExact).
	SketchPool() *streamagg.Pool
	// Recycle hands the buffers of a previous Drain/Flush result back
	// to the collector for reuse. Only call with the exact slices that
	// call returned, and only when nothing retains them or their
	// records — retaining callers (the Processor, the windowed store)
	// simply never call it.
	Recycle(samples []receipt.SampleReceipt, aggs []receipt.AggReceipt)
	// Memory reports the §7.1 memory accounting.
	Memory() MemoryStats
	// Stats returns (packets observed, packets that matched no
	// prefix).
	Stats() (observed, unclassified uint64)
}

// NewPathCollector builds the collector variant cfg.Shards selects: a
// single-threaded Collector when the resolved shard count is 1, a
// ShardedCollector otherwise (Shards == 0 resolves to GOMAXPROCS).
func NewPathCollector(cfg CollectorConfig) (PathCollector, error) {
	if resolveShards(cfg.Shards) == 1 {
		return NewCollector(cfg)
	}
	return NewShardedCollector(cfg)
}

// pathState is the collector's per-active-path state: one open
// aggregate receipt and the sampler's temporary buffer (§7.1's
// monitoring-cache entry), plus — under BackendSketch — the lazily
// created streaming summary.
type pathState struct {
	id      receipt.PathID
	sampler *sampling.Sampler
	part    *aggregation.Partitioner
	sketch  *streamagg.PathSketch

	// touched records whether the path saw any observation since the
	// last Drain; idleDrains counts consecutive untouched Drains. They
	// drive the opt-in idle eviction (CollectorConfig.EvictIdleEpochs).
	touched    bool
	idleDrains int32
}

// backend is the streaming-backend plumbing shared by the serial
// collector and every shard of a sharded one: the keep filter and one
// sketch pool (sync.Pool-backed, safe for concurrent shard use).
type backend struct {
	sketch bool
	keep   streamagg.KeepFilter
	pool   *streamagg.Pool
}

func newBackend(cfg *CollectorConfig) backend {
	if cfg.Backend != BackendSketch {
		return backend{}
	}
	return backend{
		sketch: true,
		keep:   streamagg.NewKeepFilter(cfg.Sketch.KeepRate, cfg.Sketch.Salt, cfg.Sketch.MarkerRate),
		pool:   streamagg.NewPool(cfg.Sketch.SketchCells, cfg.Sketch.SketchSeed),
	}
}

// newPathState builds one path's state, wiring the thinning filter and
// the streaming sink when the sketch backend is on. The PathSketch
// itself is created lazily on the first sampled record — only a small
// fraction of paths see a sample in any interval, and pool-recycled
// sketches carry ~16 KiB of histogram state each.
func (b *backend) newPathState(cfg *CollectorConfig, key packet.PathKey) *pathState {
	id := cfg.PathID(key)
	//lint:ignore hotpath once per newly seen path, amortized over that path's whole packet stream
	st := &pathState{
		id:      id,
		sampler: sampling.New(cfg.Sampling),
		part:    aggregation.New(cfg.Aggregation, id),
	}
	if b.sketch {
		st.sampler.SetKeep(b.keep.Keep)
		pool := b.pool
		//lint:ignore hotpath sink closure is bound once at path setup, not per packet
		st.sampler.SetSink(func(pktID uint64, tNS int64) {
			if st.sketch == nil {
				st.sketch = pool.Get(st.id)
			}
			st.sketch.Observe(pktID, tNS)
		})
	}
	return st
}

// Collector is the single-threaded data-plane module of one HOP. It
// implements PathCollector (and thereby netsim.Observer and
// netsim.BatchObserver).
//
// Concurrency model: a Collector is one shard's worth of data plane —
// all of its state (path map, samplers, partitioners, counters) is
// owned by a single goroutine and its per-packet path takes no locks,
// exactly the §7.1 budget of three memory accesses, one hash function
// and one timestamp computation. To use more than one core per HOP,
// wrap the same config in a ShardedCollector, which hash-partitions
// paths across N Collectors-worth of shard state the way a real router
// shards by interface; the two are receipt-for-receipt equivalent.
type Collector struct {
	cfg     CollectorConfig
	backend backend
	paths   map[packet.PathKey]*pathState
	epoch   EpochID

	// Recycled outer receipt slices for Drain/Flush (see Recycle).
	spareSamples []receipt.SampleReceipt
	spareAggs    []receipt.AggReceipt

	observed     uint64
	unclassified uint64
}

// NewCollector builds a collector.
func NewCollector(cfg CollectorConfig) (*Collector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Collector{cfg: cfg, paths: make(map[packet.PathKey]*pathState)}
	c.backend = newBackend(&c.cfg)
	return c, nil
}

// Observe processes one packet observation: classify, aggregate,
// sample. digest is the packet's 64-bit ID; tNS the HOP's (possibly
// skewed) observation timestamp.
//
//vpm:hotpath
func (c *Collector) Observe(pkt *packet.Packet, digest uint64, tNS int64) {
	c.observed++
	key, ok := c.cfg.Table.Classify(pkt)
	if !ok {
		c.unclassified++
		return
	}
	st, ok := c.paths[key]
	if !ok {
		st = c.backend.newPathState(&c.cfg, key)
		c.paths[key] = st
	}
	st.touched = true
	st.part.Observe(digest, tNS)
	st.sampler.Observe(digest, tNS)
}

// ObserveBatch processes a slice of observations in order — the
// netsim.BatchObserver entry point. Semantically identical to calling
// Observe per packet; the ShardedCollector adds the cross-core
// fan-out.
//
//vpm:hotpath
func (c *Collector) ObserveBatch(batch []netsim.Observation) {
	for i := range batch {
		c.Observe(batch[i].Pkt, batch[i].Digest, batch[i].TimeNS)
	}
}

// HOP returns the collector's HOP identity.
func (c *Collector) HOP() receipt.HOPID { return c.cfg.HOP }

// Drain returns the receipts finalized since the last Drain: one
// sample receipt per active path (possibly empty ones are skipped)
// plus all closed aggregate receipts, sorted by PathID so that
// identical runs drain identical receipt sequences regardless of map
// iteration order. The control-plane processor calls this
// periodically.
//
//vpm:hotpath
func (c *Collector) Drain() ([]receipt.SampleReceipt, []receipt.AggReceipt) {
	samples, aggs := c.takeSpares()
	for key, st := range c.paths {
		var evict bool
		samples, aggs, evict = drainPath(st, c.cfg.EvictIdleEpochs, samples, aggs)
		if evict {
			delete(c.paths, key)
		}
	}
	samples = mergeSamplesByPath(samples)
	sortReceipts(samples, aggs)
	return samples, aggs
}

// drainPath moves one path's finalized receipts into (samples, aggs)
// and applies the idle-eviction policy: when the path has been
// untouched for evictAfter consecutive Drains (and its sketch, if any,
// has been sealed away), its open aggregate is force-flushed into this
// drain and evict=true tells the caller to delete the state. With
// evictAfter == 0 the policy is off and every path drains the
// historical way.
func drainPath(st *pathState, evictAfter int, samples []receipt.SampleReceipt, aggs []receipt.AggReceipt) (_ []receipt.SampleReceipt, _ []receipt.AggReceipt, evict bool) {
	if recs := st.sampler.Take(); len(recs) > 0 {
		samples = append(samples, receipt.SampleReceipt{Path: st.id, Samples: recs})
	}
	if st.touched {
		st.touched = false
		st.idleDrains = 0
	} else if evictAfter > 0 {
		st.idleDrains++
		if st.idleDrains >= int32(evictAfter) && st.sketch == nil {
			flushed := st.part.Flush()
			aggs = append(aggs, flushed...)
			return samples, aggs, true
		}
	}
	taken := st.part.Take()
	aggs = append(aggs, taken...)
	st.part.Recycle(taken)
	return samples, aggs, false
}

// takeSpares hands out the recycled outer receipt slices (nil when the
// caller never recycles — the allocating, always-safe default).
func (c *Collector) takeSpares() ([]receipt.SampleReceipt, []receipt.AggReceipt) {
	samples, aggs := c.spareSamples, c.spareAggs
	c.spareSamples, c.spareAggs = nil, nil
	return samples, aggs
}

// Flush finalizes all open state (end of reporting period or stream)
// and returns the remaining receipts, in the same deterministic order
// as Drain.
func (c *Collector) Flush() ([]receipt.SampleReceipt, []receipt.AggReceipt) {
	samples, aggs := c.takeSpares()
	for _, st := range c.paths {
		flushed := st.part.Flush()
		aggs = append(aggs, flushed...)
		st.part.Recycle(flushed)
		if recs := st.sampler.Take(); len(recs) > 0 {
			samples = append(samples, receipt.SampleReceipt{Path: st.id, Samples: recs})
		}
	}
	samples = mergeSamplesByPath(samples)
	sortReceipts(samples, aggs)
	return samples, aggs
}

// Recycle hands the buffers of a previous Drain/Flush result back for
// reuse: the outer slices return to the collector, each receipt's
// record buffer to its path's sampler. Safe only when nothing retains
// the result (see PathCollector.Recycle).
func (c *Collector) Recycle(samples []receipt.SampleReceipt, aggs []receipt.AggReceipt) {
	for i := range samples {
		if st, ok := c.paths[samples[i].Path.Key]; ok {
			st.sampler.Recycle(samples[i].Samples)
		}
	}
	if cap(samples) > cap(c.spareSamples) {
		c.spareSamples = samples[:0]
	}
	if cap(aggs) > cap(c.spareAggs) {
		c.spareAggs = aggs[:0]
	}
}

// DrainSketches seals and returns the streaming sketches of every path
// that sampled at least one packet since the last call, PathID-sorted.
// Ownership passes to the caller; return them via SketchPool().Put.
func (c *Collector) DrainSketches() []*streamagg.PathSketch {
	var out []*streamagg.PathSketch
	for _, st := range c.paths {
		if st.sketch != nil {
			out = append(out, st.sketch)
			st.sketch = nil
		}
	}
	sortSketches(out)
	return out
}

// SketchPool returns the pool sealed sketches recycle through (nil
// under BackendExact).
func (c *Collector) SketchPool() *streamagg.Pool { return c.backend.pool }

// sortSketches puts sealed sketches into canonical PathID order.
func sortSketches(s []*streamagg.PathSketch) {
	sort.Slice(s, func(a, b int) bool { return s[a].Path.Compare(s[b].Path) < 0 })
}

// sortReceipts puts drained receipts into the canonical deterministic
// order: sample receipts sorted by PathID; aggregate receipts stably
// sorted by PathID only, so each path's aggregates keep their stream
// order (CombineAggregates relies on it).
func sortReceipts(samples []receipt.SampleReceipt, aggs []receipt.AggReceipt) {
	//lint:ignore hotpath two comparator closures once per drain, not per packet
	sort.Slice(samples, func(a, b int) bool {
		return samples[a].Path.Compare(samples[b].Path) < 0
	})
	//lint:ignore hotpath see above: once per drain
	sort.SliceStable(aggs, func(a, b int) bool {
		return aggs[a].Path.Compare(aggs[b].Path) < 0
	})
}

// MemoryStats is the §7.1 memory-budget breakdown of a collector.
type MemoryStats struct {
	// ActivePaths is the number of paths with live state.
	ActivePaths int
	// MonitoringCacheBytes is the per-path open-receipt state: the
	// paper's "PathID, AggID, and PktCnt — roughly 20 bytes" per
	// path, at our encoding's actual size.
	MonitoringCacheBytes int
	// TempBufferPeakEntries is the high-water mark of the delay
	// sampler's temporary packet buffer across paths (entries).
	TempBufferPeakEntries int
	// TempBufferPeakBytes converts the peak to bytes at the wire size
	// of one 〈PktID, Time〉 record.
	TempBufferPeakBytes int
}

// Memory reports the collector's current memory accounting.
func (c *Collector) Memory() MemoryStats {
	m := MemoryStats{ActivePaths: len(c.paths)}
	peak := 0
	for _, st := range c.paths {
		if hw := st.sampler.TempHighWater(); hw > peak {
			peak = hw
		}
	}
	m.MonitoringCacheBytes = len(c.paths) * receipt.BaseAggReceiptBytes
	m.TempBufferPeakEntries = peak
	m.TempBufferPeakBytes = peak * receipt.SampleRecordBytes
	return m
}

// Stats returns (packets observed, packets that matched no prefix).
func (c *Collector) Stats() (observed, unclassified uint64) {
	return c.observed, c.unclassified
}
