package core

import (
	"fmt"
	"sort"
	"sync"

	"vpm/internal/aggregation"
	"vpm/internal/hashing"
	"vpm/internal/netsim"
	"vpm/internal/packet"
	"vpm/internal/receipt"
	"vpm/internal/sampling"
	"vpm/internal/streamagg"
)

// Tuning is one domain's locally chosen resource knobs (§2.2
// Tunability): its sampling rate σ and its aggregation (cut) rate δ.
type Tuning struct {
	// SampleRate is the fraction of packets delay-sampled (beyond the
	// always-sampled markers).
	SampleRate float64
	// AggRate is the cutting-point rate; mean aggregate size is
	// 1/AggRate packets.
	AggRate float64
}

// DeployConfig configures a whole-path VPM deployment.
type DeployConfig struct {
	// MarkerRate is the system-wide marker frequency µ (a VPM design
	// constant, §5.1).
	MarkerRate float64
	// WindowNS is the system-wide reordering safety threshold J
	// (§6.3; the paper's conservative choice is 10 ms).
	WindowNS int64
	// Default tuning applies to every domain without an override.
	Default Tuning
	// PerDomain overrides tuning for named domains — each domain
	// chooses its own cost/quality trade-off independently.
	PerDomain map[string]Tuning
	// SkipDomains lists domains that have not deployed VPM (§8,
	// partial deployment): their HOPs produce no receipts.
	SkipDomains map[string]bool
	// Shards selects each HOP collector's parallelism: 0 auto
	// (GOMAXPROCS), 1 single-threaded, N ≥ 2 a ShardedCollector with
	// N shards. Sharded and serial deployments produce identical
	// receipts for identical traffic.
	Shards int
	// Backend selects exact sample retention (the zero value) or the
	// streaming sketch backend for every HOP collector.
	Backend Backend
	// Sketch configures the streaming backend when Backend ==
	// BackendSketch. Its MarkerRate is filled in from
	// DeployConfig.MarkerRate; KeepRate, Salt, SketchCells and
	// SketchSeed are system-wide constants every HOP must share.
	Sketch streamagg.Config
}

// Validate rejects deployment configurations that would otherwise
// fail deep inside collector construction with a less useful error —
// or, worse, silently misbehave (a negative shard count used to reach
// the collector validator; zero rates produced deployments that never
// sample or never cut).
func (c DeployConfig) Validate() error {
	if c.MarkerRate <= 0 || c.MarkerRate > 1 {
		return fmt.Errorf("core: marker rate %v outside (0,1]", c.MarkerRate)
	}
	if c.WindowNS < 0 {
		return fmt.Errorf("core: negative reordering window %dns", c.WindowNS)
	}
	if c.Shards < 0 {
		return fmt.Errorf("core: negative collector shard count %d (0 = GOMAXPROCS, 1 = serial)", c.Shards)
	}
	if c.Backend == BackendSketch {
		sk := c.Sketch
		sk.MarkerRate = c.MarkerRate
		if err := sk.Validate(); err != nil {
			return err
		}
	}
	if err := validateTuning("default", c.Default); err != nil {
		return err
	}
	for name, t := range c.PerDomain {
		if err := validateTuning(fmt.Sprintf("domain %q", name), t); err != nil {
			return err
		}
	}
	return nil
}

// validateTuning checks one domain's σ/δ knobs.
func validateTuning(who string, t Tuning) error {
	if t.SampleRate < 0 || t.SampleRate > 1 {
		return fmt.Errorf("core: %s sampling rate %v outside [0,1]", who, t.SampleRate)
	}
	if t.AggRate <= 0 || t.AggRate > 1 {
		return fmt.Errorf("core: %s aggregation rate %v outside (0,1]", who, t.AggRate)
	}
	return nil
}

// DefaultDeployConfig returns the configuration the experiments use as
// a baseline: markers about once per mille (one per ~10 ms at backbone
// rates, which bounds the sampling temp buffer exactly as §7.1's J =
// 10 ms budget does), 1% sampling, one aggregate per ~100k packets
// (the paper's Figure 3 scenario), and a 2 ms AggTrans window — four
// times the largest reordering distance measured in the paper's cited
// Internet study (§6.3, reference [10]), chosen so patch-up state
// stays a negligible fraction of receipt bandwidth. The ablation
// benchmarks vary both windows.
func DefaultDeployConfig() DeployConfig {
	return DeployConfig{
		MarkerRate: 0.001,
		WindowNS:   2_000_000,
		Default:    Tuning{SampleRate: 0.01, AggRate: 0.00001},
	}
}

// DefaultSamplingConfig returns the default Algorithm 1 parameters of
// DefaultDeployConfig for standalone collector use.
func DefaultSamplingConfig() sampling.Config {
	c := DefaultDeployConfig()
	return sampling.Config{MarkerRate: c.MarkerRate, SampleRate: c.Default.SampleRate}
}

// DefaultAggregationConfig returns the default Algorithm 2 parameters
// of DefaultDeployConfig for standalone collector use.
func DefaultAggregationConfig() aggregation.Config {
	c := DefaultDeployConfig()
	return aggregation.Config{CutRate: c.Default.AggRate, WindowNS: c.WindowNS}
}

// Deployment wires a Collector + Processor pair onto every HOP of a
// simulated path. It is the integration point the examples and
// experiments use: build a netsim.Path, deploy, run traffic, then
// verify.
type Deployment struct {
	// Path is the linear path this deployment covers, nil for a mesh
	// deployment (see Topo).
	Path *netsim.Path
	// Topo is the mesh topology this deployment covers, nil for a
	// linear one (see NewTopoDeployment). Exactly one of Path and Topo
	// is set; Layout serves linear deployments, RouteLayouts and
	// KeyLayouts serve meshes.
	Topo       *netsim.Topology
	Table      *packet.Table
	Collectors map[receipt.HOPID]PathCollector
	Processors map[receipt.HOPID]*Processor

	markerThreshold  uint64
	sampleThresholds map[receipt.HOPID]uint64
	// sampleKeep is the system-wide retention thinning filter under
	// BackendSketch (nil otherwise); verifiers need it to avoid
	// flagging thinned records as missing.
	sampleKeep func(pktID uint64) bool
	// keyLayouts caches the per-key route layouts of a mesh deployment
	// (nil for linear ones); built lazily on first KeyLayouts call.
	keyLayoutsOnce sync.Once
	keyLayouts     map[packet.PathKey][]Layout
}

// NewDeployment builds collectors for every HOP of every deploying
// domain on the path.
func NewDeployment(path *netsim.Path, table *packet.Table, cfg DeployConfig) (*Deployment, error) {
	if err := path.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Deployment{
		Path:             path,
		Table:            table,
		Collectors:       make(map[receipt.HOPID]PathCollector),
		Processors:       make(map[receipt.HOPID]*Processor),
		markerThreshold:  hashing.ThresholdForRate(cfg.MarkerRate),
		sampleThresholds: make(map[receipt.HOPID]uint64),
	}
	if cfg.Backend == BackendSketch {
		cfg.Sketch.MarkerRate = cfg.MarkerRate
		keep := streamagg.NewKeepFilter(cfg.Sketch.KeepRate, cfg.Sketch.Salt, cfg.Sketch.MarkerRate)
		d.sampleKeep = keep.Keep
	}
	for di := range path.Domains {
		dom := &path.Domains[di]
		if cfg.SkipDomains[dom.Name] {
			continue
		}
		tune, ok := cfg.PerDomain[dom.Name]
		if !ok {
			tune = cfg.Default
		}
		in, eg := path.HOPsOf(di)
		hops := []struct {
			id      receipt.HOPID
			ingress bool
		}{{in, true}}
		if eg != in {
			hops = append(hops, struct {
				id      receipt.HOPID
				ingress bool
			}{eg, false})
		}
		for _, h := range hops {
			di, ingress := di, h.ingress
			col, err := NewPathCollector(CollectorConfig{
				HOP:   h.id,
				Table: table,
				PathID: func(key packet.PathKey) receipt.PathID {
					return path.PathIDFor(receipt.PathID{Key: key}, di, ingress)
				},
				Sampling: sampling.Config{
					MarkerRate: cfg.MarkerRate,
					SampleRate: tune.SampleRate,
				},
				Aggregation: aggregation.Config{
					CutRate:  tune.AggRate,
					WindowNS: cfg.WindowNS,
				},
				Shards:  cfg.Shards,
				Backend: cfg.Backend,
				Sketch:  cfg.Sketch,
			})
			if err != nil {
				return nil, fmt.Errorf("core: HOP %v: %w", h.id, err)
			}
			d.Collectors[h.id] = col
			d.Processors[h.id] = NewProcessor(col)
			d.sampleThresholds[h.id] = hashing.ThresholdForRate(tune.SampleRate)
		}
	}
	return d, nil
}

// Observers adapts the deployment's collectors to the simulator.
func (d *Deployment) Observers() map[receipt.HOPID]netsim.Observer {
	out := make(map[receipt.HOPID]netsim.Observer, len(d.Collectors))
	for id, c := range d.Collectors {
		out[id] = c
	}
	return out
}

// Finalize flushes every collector into its processor. Call after the
// simulation run, before building verifiers.
func (d *Deployment) Finalize() {
	for _, p := range d.Processors {
		p.Finalize()
	}
}

// Layout derives the verifier's path layout from the simulated linear
// path. A mesh deployment has no single layout — each route has its
// own (RouteLayouts/KeyLayouts) — so Layout returns the zero Layout
// there; the verifier entry points route through verifierLayout, which
// picks the right per-key layout for both kinds.
func (d *Deployment) Layout() Layout {
	p := d.Path
	if p == nil {
		return Layout{}
	}
	var l Layout
	for di := range p.Domains {
		in, eg := p.HOPsOf(di)
		if di > 0 {
			_, prevEg := p.HOPsOf(di - 1)
			l.Segments = append(l.Segments, Segment{
				Kind:       LinkSegment,
				Up:         prevEg,
				Down:       in,
				Name:       fmt.Sprintf("%s-%s", p.Domains[di-1].Name, p.Domains[di].Name),
				UpDomain:   p.Domains[di-1].Name,
				DownDomain: p.Domains[di].Name,
			})
		}
		l.HOPs = append(l.HOPs, in)
		if eg != in {
			l.Segments = append(l.Segments, Segment{
				Kind:       DomainSegment,
				Up:         in,
				Down:       eg,
				Name:       p.Domains[di].Name,
				UpDomain:   p.Domains[di].Name,
				DownDomain: p.Domains[di].Name,
			})
			l.HOPs = append(l.HOPs, eg)
		}
	}
	return l
}

// NewVerifier builds a verifier over the deployment's receipts for
// one origin-prefix path key, indexing only that key's receipts into
// a private store (each call re-scans the deployment's receipts). To
// verify many path keys, build the store once with NewStore and share
// it across per-key verifiers via NewVerifierOn instead.
func (d *Deployment) NewVerifier(key packet.PathKey) *Verifier {
	return d.NewVerifierOn(d.newStore(&key), key)
}

// NewStore indexes every processor's retained receipts — all HOPs,
// all traffic keys — into one ReceiptStore. Build it once after
// Finalize; every per-key verifier then resolves its receipts with
// index lookups instead of re-scanning the deployment.
func (d *Deployment) NewStore() *ReceiptStore {
	return d.newStore(nil)
}

// newStore indexes the deployment's receipts, all of them (only ==
// nil) or one traffic key's worth.
func (d *Deployment) newStore(only *packet.PathKey) *ReceiptStore {
	s := NewReceiptStore()
	// Deterministic iteration order for reproducibility.
	hops := make([]int, 0, len(d.Processors))
	for id := range d.Processors {
		hops = append(hops, int(id))
	}
	sort.Ints(hops)
	for _, hi := range hops {
		id := receipt.HOPID(hi)
		proc := d.Processors[id]
		for _, r := range proc.CombinedSamples() {
			if only == nil || r.Path.Key == *only {
				s.AddSamples(id, r)
			}
		}
		aggs := proc.Aggs
		if only != nil {
			aggs = nil
			for _, a := range proc.Aggs {
				if a.Path.Key == *only {
					aggs = append(aggs, a)
				}
			}
		}
		s.AddAggs(id, aggs)
	}
	return s
}

// NewVerifierOn builds a verifier for one origin-prefix path key over
// a shared receipt store (see NewStore), configured with the
// deployment's constants. On a mesh deployment the verifier covers the
// key's first route; a multipath (ECMP) key has several routes — use
// KeyLayouts and build one verifier per route layout to cover them
// all.
func (d *Deployment) NewVerifierOn(store *ReceiptStore, key packet.PathKey) *Verifier {
	v := NewVerifierOn(d.verifierLayout(key), store, key)
	v.SetConfig(d.VerifierConfig())
	return v
}

// verifierLayout resolves the layout a single-layout verifier for key
// uses: the linear path layout, or — on a mesh — the key's first
// route layout (an unrouted key gets an empty layout, yielding a
// verifier with nothing to check rather than a panic).
func (d *Deployment) verifierLayout(key packet.PathKey) Layout {
	if d.Topo == nil {
		return d.Layout()
	}
	if ls := d.KeyLayouts()[key]; len(ls) > 0 {
		return ls[0]
	}
	return Layout{}
}

// VerifierConfig returns the deployment constants a hand-built
// Verifier needs (see Verifier.SetConfig); Deployment.NewVerifier
// applies them automatically.
func (d *Deployment) VerifierConfig() VerifierConfig {
	return VerifierConfig{
		MarkerThreshold:  d.markerThreshold,
		SampleThresholds: d.sampleThresholds,
		SampleKeep:       d.sampleKeep,
	}
}

// TotalReceiptBytes sums the receipt bandwidth of all HOPs — the
// numerator of the path's §7.1 bandwidth overhead.
func (d *Deployment) TotalReceiptBytes() int64 {
	var total int64
	for _, p := range d.Processors {
		total += p.ReceiptBytes()
	}
	return total
}
