// Package lossmodel implements the packet-loss processes the paper's
// evaluation uses to damage traffic: the two-state Gilbert-Elliott
// model (paper reference [9], Ebert & Willig) and, for comparisons and
// tests, independent Bernoulli loss.
//
// The paper "introduce[s] loss in the chosen packet sequence" by
// discarding a subset of packets chosen with Gilbert-Elliott (§7.2);
// these processes plug into the network simulator's links and domains.
package lossmodel

import (
	"fmt"

	"vpm/internal/stats"
)

// Process decides, statefully, whether each successive packet is
// dropped. Implementations are not safe for concurrent use.
type Process interface {
	// Drop reports whether the next packet is lost.
	Drop() bool
}

// None is a Process that never drops.
type None struct{}

// Drop always returns false.
func (None) Drop() bool { return false }

// Bernoulli drops each packet independently with probability P.
type Bernoulli struct {
	P   float64
	rng *stats.RNG
}

// NewBernoulli returns an independent-loss process with rate p.
func NewBernoulli(p float64, rng *stats.RNG) *Bernoulli {
	return &Bernoulli{P: p, rng: rng}
}

// Drop implements Process.
func (b *Bernoulli) Drop() bool { return b.rng.Bool(b.P) }

// GilbertElliott is the classic two-state Markov loss model: a Good
// state with loss probability LossGood and a Bad state with loss
// probability LossBad, with per-packet transition probabilities PGB
// (Good->Bad) and PBG (Bad->Good). Loss is bursty: the mean residence
// in the Bad state is 1/PBG packets.
type GilbertElliott struct {
	PGB, PBG           float64
	LossGood, LossBad  float64
	inBad              bool
	rng                *stats.RNG
	drops, transitions int
	total              int
}

// NewGilbertElliott builds the model with explicit parameters.
func NewGilbertElliott(pgb, pbg, lossGood, lossBad float64, rng *stats.RNG) (*GilbertElliott, error) {
	for _, v := range []float64{pgb, pbg, lossGood, lossBad} {
		if v < 0 || v > 1 {
			return nil, fmt.Errorf("lossmodel: parameter %v outside [0,1]", v)
		}
	}
	return &GilbertElliott{PGB: pgb, PBG: pbg, LossGood: lossGood, LossBad: lossBad, rng: rng}, nil
}

// FromTargetLoss builds a Gilbert model (LossGood = 0, LossBad = 1)
// whose stationary loss rate is target and whose mean loss-burst
// length is meanBurst packets. This is the parameterization the
// experiments use: "introduce X% loss".
func FromTargetLoss(target, meanBurst float64, rng *stats.RNG) (*GilbertElliott, error) {
	if target < 0 || target >= 1 {
		return nil, fmt.Errorf("lossmodel: target loss %v outside [0,1)", target)
	}
	if target == 0 {
		return &GilbertElliott{rng: rng}, nil
	}
	if meanBurst < 1 {
		return nil, fmt.Errorf("lossmodel: mean burst %v below 1 packet", meanBurst)
	}
	pbg := 1 / meanBurst
	// Stationary P(bad) = PGB/(PGB+PBG) must equal target.
	pgb := target * pbg / (1 - target)
	if pgb > 1 {
		return nil, fmt.Errorf("lossmodel: target %v with burst %v needs PGB > 1", target, meanBurst)
	}
	return NewGilbertElliott(pgb, pbg, 0, 1, rng)
}

// StationaryLoss returns the model's long-run loss rate.
func (g *GilbertElliott) StationaryLoss() float64 {
	denom := g.PGB + g.PBG
	if denom == 0 {
		// Chain never transitions; loss rate is that of the initial
		// (Good) state.
		return g.LossGood
	}
	pBad := g.PGB / denom
	return (1-pBad)*g.LossGood + pBad*g.LossBad
}

// Drop implements Process: advance the chain one packet and decide.
func (g *GilbertElliott) Drop() bool {
	// Transition first, then emit by current state.
	if g.inBad {
		if g.rng.Bool(g.PBG) {
			g.inBad = false
			g.transitions++
		}
	} else {
		if g.rng.Bool(g.PGB) {
			g.inBad = true
			g.transitions++
		}
	}
	p := g.LossGood
	if g.inBad {
		p = g.LossBad
	}
	g.total++
	if g.rng.Bool(p) {
		g.drops++
		return true
	}
	return false
}

// ObservedLoss returns the empirical loss rate so far (0 if no packets
// have been offered yet).
func (g *GilbertElliott) ObservedLoss() float64 {
	if g.total == 0 {
		return 0
	}
	return float64(g.drops) / float64(g.total)
}
