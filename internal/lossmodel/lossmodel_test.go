package lossmodel

import (
	"math"
	"testing"

	"vpm/internal/stats"
)

func TestNoneNeverDrops(t *testing.T) {
	var n None
	for i := 0; i < 1000; i++ {
		if n.Drop() {
			t.Fatal("None dropped")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	for _, p := range []float64{0, 0.1, 0.25, 0.5} {
		b := NewBernoulli(p, stats.NewRNG(1))
		const n = 100000
		drops := 0
		for i := 0; i < n; i++ {
			if b.Drop() {
				drops++
			}
		}
		got := float64(drops) / n
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bernoulli(%v) empirical rate %v", p, got)
		}
	}
}

func TestGilbertElliottValidation(t *testing.T) {
	r := stats.NewRNG(1)
	if _, err := NewGilbertElliott(-0.1, 0.5, 0, 1, r); err == nil {
		t.Error("negative PGB accepted")
	}
	if _, err := NewGilbertElliott(0.1, 1.5, 0, 1, r); err == nil {
		t.Error("PBG > 1 accepted")
	}
}

func TestFromTargetLossValidation(t *testing.T) {
	r := stats.NewRNG(1)
	if _, err := FromTargetLoss(1.0, 5, r); err == nil {
		t.Error("target 1.0 accepted")
	}
	if _, err := FromTargetLoss(-0.1, 5, r); err == nil {
		t.Error("negative target accepted")
	}
	if _, err := FromTargetLoss(0.5, 0.5, r); err == nil {
		t.Error("sub-packet burst accepted")
	}
	if _, err := FromTargetLoss(0.9, 1, r); err == nil {
		t.Error("infeasible PGB accepted")
	}
}

func TestFromTargetLossZero(t *testing.T) {
	g, err := FromTargetLoss(0, 10, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if g.Drop() {
			t.Fatal("zero-loss model dropped")
		}
	}
}

func TestGilbertElliottStationaryLoss(t *testing.T) {
	r := stats.NewRNG(1)
	for _, target := range []float64{0.05, 0.10, 0.25, 0.50} {
		g, err := FromTargetLoss(target, 8, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		if s := g.StationaryLoss(); math.Abs(s-target) > 1e-9 {
			t.Errorf("StationaryLoss = %v, want %v", s, target)
		}
		const n = 400000
		drops := 0
		for i := 0; i < n; i++ {
			if g.Drop() {
				drops++
			}
		}
		got := float64(drops) / n
		// Bursty processes mix slowly; allow a generous band.
		if math.Abs(got-target) > 0.02 {
			t.Errorf("target %v: empirical %v", target, got)
		}
		if o := g.ObservedLoss(); math.Abs(o-got) > 1e-9 {
			t.Errorf("ObservedLoss %v != empirical %v", o, got)
		}
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	// Mean loss-burst length should be near the configured mean
	// (bursts are consecutive drops while in the Bad state with
	// LossBad = 1).
	const meanBurst = 10.0
	g, err := FromTargetLoss(0.2, meanBurst, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	const n = 500000
	bursts, inBurst, lenSum, cur := 0, false, 0, 0
	for i := 0; i < n; i++ {
		if g.Drop() {
			if !inBurst {
				bursts++
				inBurst = true
				cur = 0
			}
			cur++
		} else if inBurst {
			lenSum += cur
			inBurst = false
		}
	}
	if bursts < 100 {
		t.Fatalf("too few bursts (%d) to judge", bursts)
	}
	mean := float64(lenSum) / float64(bursts)
	if mean < meanBurst*0.7 || mean > meanBurst*1.3 {
		t.Errorf("mean burst length %v, want ~%v", mean, meanBurst)
	}
}

func TestGilbertElliottBurstierThanBernoulli(t *testing.T) {
	// At the same loss rate, GE with long bursts must produce fewer,
	// longer loss runs than Bernoulli.
	countBursts := func(p Process, n int) int {
		bursts, inBurst := 0, false
		for i := 0; i < n; i++ {
			if p.Drop() {
				if !inBurst {
					bursts++
					inBurst = true
				}
			} else {
				inBurst = false
			}
		}
		return bursts
	}
	const n = 200000
	g, _ := FromTargetLoss(0.2, 10, stats.NewRNG(3))
	b := NewBernoulli(0.2, stats.NewRNG(4))
	gb, bb := countBursts(g, n), countBursts(b, n)
	if gb >= bb {
		t.Errorf("GE bursts (%d) should be fewer than Bernoulli bursts (%d)", gb, bb)
	}
}

func TestStationaryLossDegenerate(t *testing.T) {
	g, err := NewGilbertElliott(0, 0, 0.3, 1, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if s := g.StationaryLoss(); s != 0.3 {
		t.Errorf("frozen chain stationary loss = %v, want 0.3 (good state)", s)
	}
}

func TestObservedLossEmpty(t *testing.T) {
	g, _ := FromTargetLoss(0.1, 5, stats.NewRNG(1))
	if g.ObservedLoss() != 0 {
		t.Error("ObservedLoss before any packet should be 0")
	}
}

func BenchmarkGilbertElliott(b *testing.B) {
	g, _ := FromTargetLoss(0.25, 8, stats.NewRNG(1))
	for i := 0; i < b.N; i++ {
		g.Drop()
	}
}
