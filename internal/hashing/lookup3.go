// Package hashing implements the "Bob" hash (Bob Jenkins' lookup3),
// which the paper selects for packet digesting because it "has been
// shown to work well with Internet traffic" (Molina et al., ITC 2005,
// paper reference [19]), together with the derived primitives VPM
// needs: 64-bit packet digests, the keyed SampleFcn of Algorithm 1, and
// conversions between sampling rates and hash thresholds.
//
// All HOPs in a deployment must compute identical digests for identical
// packets, so this implementation is a faithful port of the public
// domain lookup3.c (hashlittle2) and is verified against the reference
// test vectors from that file.
package hashing

import "math"

func rot(x uint32, k uint) uint32 { return x<<k | x>>(32-k) }

// Lookup3 is Bob Jenkins' hashlittle2: it hashes data with two 32-bit
// seeds pc and pb and returns two 32-bit results (c, b), of which c is
// the primary hash (identical to hashlittle(data, pc) when pb == 0).
func Lookup3(data []byte, pc, pb uint32) (c, b uint32) {
	length := len(data)
	a := 0xdeadbeef + uint32(length) + pc
	b = a
	c = a + pb

	k := data
	for len(k) > 12 {
		a += uint32(k[0]) | uint32(k[1])<<8 | uint32(k[2])<<16 | uint32(k[3])<<24
		b += uint32(k[4]) | uint32(k[5])<<8 | uint32(k[6])<<16 | uint32(k[7])<<24
		c += uint32(k[8]) | uint32(k[9])<<8 | uint32(k[10])<<16 | uint32(k[11])<<24
		// mix(a,b,c)
		a -= c
		a ^= rot(c, 4)
		c += b
		b -= a
		b ^= rot(a, 6)
		a += c
		c -= b
		c ^= rot(b, 8)
		b += a
		a -= c
		a ^= rot(c, 16)
		c += b
		b -= a
		b ^= rot(a, 19)
		a += c
		c -= b
		c ^= rot(b, 4)
		b += a
		k = k[12:]
	}

	// Tail: the famous fall-through switch from lookup3.c.
	switch len(k) {
	case 12:
		c += uint32(k[11]) << 24
		fallthrough
	case 11:
		c += uint32(k[10]) << 16
		fallthrough
	case 10:
		c += uint32(k[9]) << 8
		fallthrough
	case 9:
		c += uint32(k[8])
		fallthrough
	case 8:
		b += uint32(k[7]) << 24
		fallthrough
	case 7:
		b += uint32(k[6]) << 16
		fallthrough
	case 6:
		b += uint32(k[5]) << 8
		fallthrough
	case 5:
		b += uint32(k[4])
		fallthrough
	case 4:
		a += uint32(k[3]) << 24
		fallthrough
	case 3:
		a += uint32(k[2]) << 16
		fallthrough
	case 2:
		a += uint32(k[1]) << 8
		fallthrough
	case 1:
		a += uint32(k[0])
	case 0:
		// Zero remaining bytes: report and skip the final mix, as in
		// the reference implementation.
		return c, b
	}

	// final(a,b,c)
	c ^= b
	c -= rot(b, 14)
	a ^= c
	a -= rot(c, 11)
	b ^= a
	b -= rot(a, 25)
	c ^= b
	c -= rot(b, 16)
	a ^= c
	a -= rot(c, 4)
	b ^= a
	b -= rot(a, 14)
	c ^= b
	c -= rot(b, 24)
	return c, b
}

// Hash32 is hashlittle: a 32-bit hash of data with a single seed.
func Hash32(data []byte, seed uint32) uint32 {
	c, _ := Lookup3(data, seed, 0)
	return c
}

// Digest computes the 64-bit packet digest used throughout VPM: the
// two 32-bit lanes of Lookup3 concatenated, seeded by the two halves of
// seed. Different deployments (or epochs) can use different seeds; all
// HOPs on a path must agree on the seed to classify packets
// consistently.
func Digest(data []byte, seed uint64) uint64 {
	c, b := Lookup3(data, uint32(seed), uint32(seed>>32))
	return uint64(c)<<32 | uint64(b)
}

// Mix64 is the SplitMix64 finalizer: a cheap 64-bit bijective mixer
// with full avalanche, used to combine digests.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SampleFcn is the keyed sampling function of Algorithm 1: it combines
// the digest q of an already-observed packet with the digest p of the
// marker packet that arrived later on the same path. Because p is not
// known when q's packet is forwarded, a domain cannot predict whether
// q's packet will be sampled (bias resistance, paper section 5.1).
//
// The combination is a non-commutative 64-bit mix so that neither
// argument alone determines the output.
func SampleFcn(q, p uint64) uint64 {
	return Mix64(q ^ Mix64(p^0x517cc1b727220a95))
}

// ThresholdForRate returns the threshold sigma such that a uniformly
// distributed 64-bit hash exceeds sigma with probability rate. Rates
// outside (0,1) clamp to "never" (MaxUint64) and "always" (0).
func ThresholdForRate(rate float64) uint64 {
	if rate <= 0 {
		return math.MaxUint64
	}
	if rate >= 1 {
		return 0
	}
	// P(h > sigma) = (MaxUint64 - sigma) / 2^64  =>
	// sigma = (1-rate) * 2^64, computed in float64 with clamping.
	f := (1 - rate) * float64(math.MaxUint64)
	if f >= float64(math.MaxUint64) {
		return math.MaxUint64
	}
	if f <= 0 {
		return 0
	}
	return uint64(f)
}

// RateForThreshold is the inverse of ThresholdForRate: the probability
// that a uniform 64-bit hash exceeds sigma.
func RateForThreshold(sigma uint64) float64 {
	return float64(math.MaxUint64-sigma) / float64(math.MaxUint64)
}

// Exceeds reports whether hash value h exceeds threshold sigma — the
// single comparison both Algorithm 1 (markers, samples) and Algorithm 2
// (cutting points) are built on. Centralizing it documents the
// convention: strictly greater, matching "Digest(p) > mu" in the paper.
func Exceeds(h, sigma uint64) bool { return h > sigma }
