package hashing

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

// TestLookup3ReferenceVectors checks the vectors published in the
// self-test driver of the public-domain lookup3.c.
func TestLookup3ReferenceVectors(t *testing.T) {
	cases := []struct {
		key        string
		pc, pb     uint32
		wantC      uint32
		wantB      uint32
		checkBLane bool
	}{
		{"", 0, 0, 0xdeadbeef, 0xdeadbeef, true},
		{"", 0, 0xdeadbeef, 0xbd5b7dde, 0xdeadbeef, true},
		{"", 0xdeadbeef, 0xdeadbeef, 0x9c093ccd, 0xbd5b7dde, true},
		{"Four score and seven years ago", 0, 0, 0x17770551, 0xce7226e6, true},
		{"Four score and seven years ago", 0, 1, 0xe3607cae, 0xbd371de4, true},
		{"Four score and seven years ago", 1, 0, 0xcd628161, 0x6cbea4b3, true},
	}
	for _, c := range cases {
		gc, gb := Lookup3([]byte(c.key), c.pc, c.pb)
		if gc != c.wantC {
			t.Errorf("Lookup3(%q,%#x,%#x) c = %#x, want %#x", c.key, c.pc, c.pb, gc, c.wantC)
		}
		if c.checkBLane && gb != c.wantB {
			t.Errorf("Lookup3(%q,%#x,%#x) b = %#x, want %#x", c.key, c.pc, c.pb, gb, c.wantB)
		}
	}
}

func TestHash32MatchesPrimaryLane(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	for seed := uint32(0); seed < 8; seed++ {
		c, _ := Lookup3(data, seed, 0)
		if got := Hash32(data, seed); got != c {
			t.Fatalf("Hash32 != primary lane for seed %d", seed)
		}
	}
}

func TestLookup3AllLengths(t *testing.T) {
	// Exercise every tail-switch case (lengths 0..13 cover all cases
	// plus one full block) and ensure determinism.
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = byte(i*7 + 3)
	}
	for n := 0; n <= len(buf); n++ {
		a1, b1 := Lookup3(buf[:n], 1, 2)
		a2, b2 := Lookup3(buf[:n], 1, 2)
		if a1 != a2 || b1 != b2 {
			t.Fatalf("non-deterministic at length %d", n)
		}
		if n > 0 {
			// Changing the last byte must change the hash
			// (overwhelmingly likely; deterministic check here).
			mod := make([]byte, n)
			copy(mod, buf[:n])
			mod[n-1] ^= 0xff
			c1, _ := Lookup3(buf[:n], 1, 2)
			c2, _ := Lookup3(mod, 1, 2)
			if c1 == c2 {
				t.Errorf("length %d: last-byte flip did not change hash", n)
			}
		}
	}
}

func TestDigestSeedSensitivity(t *testing.T) {
	data := []byte("packet header bytes")
	d0 := Digest(data, 0)
	d1 := Digest(data, 1)
	d2 := Digest(data, 1<<40)
	if d0 == d1 || d0 == d2 || d1 == d2 {
		t.Error("digests with different seeds should differ")
	}
}

func TestDigestAvalanche(t *testing.T) {
	// Flipping a single input bit should flip close to half of the 64
	// output bits on average.
	data := make([]byte, 20)
	for i := range data {
		data[i] = byte(i)
	}
	base := Digest(data, 42)
	total := 0
	trials := 0
	for bytePos := 0; bytePos < len(data); bytePos++ {
		for bit := 0; bit < 8; bit++ {
			mod := make([]byte, len(data))
			copy(mod, data)
			mod[bytePos] ^= 1 << bit
			total += bits.OnesCount64(base ^ Digest(mod, 42))
			trials++
		}
	}
	avg := float64(total) / float64(trials)
	if avg < 28 || avg > 36 {
		t.Errorf("avalanche average = %.2f bits, want ~32", avg)
	}
}

func TestDigestUniformity(t *testing.T) {
	// Bucket high bits of digests of counter inputs; expect roughly
	// uniform occupancy (chi-squared-ish sanity bound).
	const buckets = 16
	const n = 16384
	counts := make([]int, buckets)
	var data [8]byte
	for i := 0; i < n; i++ {
		data[0], data[1], data[2], data[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
		d := Digest(data[:], 7)
		counts[d>>60]++
	}
	want := float64(n) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("bucket %d occupancy %d deviates from %v", i, c, want)
		}
	}
}

func TestMix64Bijective(t *testing.T) {
	// Spot-check injectivity on a window of inputs and on random pairs.
	seen := make(map[uint64]uint64, 4096)
	for i := uint64(0); i < 4096; i++ {
		v := Mix64(i)
		if prev, dup := seen[v]; dup {
			t.Fatalf("Mix64 collision: %d and %d -> %#x", prev, i, v)
		}
		seen[v] = i
	}
	// 0 is a fixed point of the finalizer (xor-multiply chain); the
	// SampleFcn constant xor keeps that harmless in practice.
	if Mix64(0) != 0 {
		t.Error("Mix64(0) is expected to be the chain's fixed point")
	}
}

func TestSampleFcnNonCommutative(t *testing.T) {
	q, p := uint64(0x1234), uint64(0x9876)
	if SampleFcn(q, p) == SampleFcn(p, q) {
		t.Error("SampleFcn should not be symmetric in its arguments")
	}
}

func TestSampleFcnKeying(t *testing.T) {
	// Changing the marker digest must (with overwhelming probability)
	// change the sample decision value for a fixed packet digest —
	// this is the bias-resistance property's mechanical core.
	f := func(q, p1, p2 uint64) bool {
		if p1 == p2 {
			return true
		}
		return SampleFcn(q, p1) != SampleFcn(q, p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThresholdRateRoundTrip(t *testing.T) {
	for _, rate := range []float64{0.001, 0.01, 0.05, 0.1, 0.5, 0.9, 0.99} {
		sigma := ThresholdForRate(rate)
		back := RateForThreshold(sigma)
		if math.Abs(back-rate) > 1e-9 {
			t.Errorf("rate %v -> sigma %#x -> rate %v", rate, sigma, back)
		}
	}
}

func TestThresholdClamping(t *testing.T) {
	if ThresholdForRate(0) != math.MaxUint64 {
		t.Error("rate 0 should never sample")
	}
	if ThresholdForRate(-1) != math.MaxUint64 {
		t.Error("negative rate should never sample")
	}
	if ThresholdForRate(1) != 0 {
		t.Error("rate 1 should always sample")
	}
	if ThresholdForRate(2) != 0 {
		t.Error("rate >1 should always sample")
	}
}

func TestThresholdEmpiricalRate(t *testing.T) {
	// The fraction of uniform hashes exceeding ThresholdForRate(r)
	// should be close to r.
	for _, rate := range []float64{0.01, 0.1, 0.5} {
		sigma := ThresholdForRate(rate)
		const n = 200000
		hits := 0
		var data [8]byte
		for i := 0; i < n; i++ {
			data[0], data[1], data[2] = byte(i), byte(i>>8), byte(i>>16)
			if Exceeds(Digest(data[:], 99), sigma) {
				hits++
			}
		}
		got := float64(hits) / n
		tol := 4 * math.Sqrt(rate*(1-rate)/n)
		if math.Abs(got-rate) > tol+0.001 {
			t.Errorf("empirical rate %v for nominal %v (tol %v)", got, rate, tol)
		}
	}
}

func TestThresholdMonotonicity(t *testing.T) {
	// Lower rate => higher threshold; a hash exceeding the higher
	// threshold also exceeds the lower one (the subset property's
	// arithmetic backbone, paper section 5.2).
	s1 := ThresholdForRate(0.01)
	s2 := ThresholdForRate(0.10)
	if s1 <= s2 {
		t.Fatalf("threshold(0.01)=%#x should exceed threshold(0.10)=%#x", s1, s2)
	}
	f := func(h uint64) bool {
		if Exceeds(h, s1) && !Exceeds(h, s2) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDigest40B(b *testing.B) {
	data := make([]byte, 40)
	b.SetBytes(40)
	for i := 0; i < b.N; i++ {
		Digest(data, 1)
	}
}

func BenchmarkSampleFcn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SampleFcn(uint64(i), 0xabcdef)
	}
}
