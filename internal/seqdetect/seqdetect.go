// Package seqdetect implements sequential hypothesis tests over the
// evidence streams the batch verifier already judges per epoch: a
// Wald SPRT and a Bayes-factor variant for each of the three evidence
// classes — loss/suppression (Bernoulli drop rate), delay
// underreporting (sub-Gaussian mean shift vs σ), and marker bias
// (marker vs σ-sample delay split).
//
// The batch checks in core flag a lying domain only after a full
// interval closes, and an adversary shaving just under the noise
// floor is never flagged at all. A sequential test instead
// accumulates the log-likelihood ratio
//
//	Λ_n = Σ_i log( P(x_i | lying) / P(x_i | honest) )
//
// per evidence item and raises a verdict the moment Λ_n crosses
// A = log((1−β)/α); it accepts honesty (and restarts) when Λ_n falls
// below B = log(β/(1−α)). Wald's bounds make the error rates
// provable: false positives ≤ α per test cycle, false negatives ≤ β
// at the design magnitude — verified empirically by the seeded
// Monte-Carlo guarantee tests in this package.
//
// The Bayes-factor variant replaces the fixed alternative with a
// conjugate mixture (Beta-Bernoulli, Normal-Normal) and thresholds
// the running marginal-likelihood ratio at 1/α: under honesty the
// Bayes factor is a nonnegative martingale with mean one, so Ville's
// inequality gives P(sup BF ≥ 1/α) ≤ α — an always-valid test that
// needs no design magnitude to keep its false-positive guarantee.
//
// Every detector holds O(1) state per (link, key): a log-likelihood
// (or sufficient statistics) plus a bounded per-epoch trajectory ring
// for the verdict it may eventually emit. Detection latches; an
// accept-honest crossing clamps the statistic at the lower bound B (a
// reflecting floor) and keeps watching, so a duty-cycling adversary
// that goes quiet cannot retire its detector — it only buys itself
// the bounded extra climb A−B. The floor is what keeps long honest
// streams safe: the first test cycle obeys Wald's FP ≤ α, and each
// recycled excursion from the floor carries only ≤ αβ false-positive
// mass, instead of a fresh ~α per cycle as a reset-to-zero repeated
// SPRT would.
package seqdetect

import "math"

// State is a sequential test's decision state after an observation.
type State uint8

// Test states.
const (
	// Undecided: the statistic is between the two thresholds.
	Undecided State = iota
	// Detected: the statistic crossed the upper (reject-honest)
	// threshold. Detection latches.
	Detected
	// Cleared: the statistic crossed the lower (accept-honest)
	// threshold. The test resets and keeps watching (repeated SPRT);
	// Cleared is reported for the crossing observation only.
	Cleared
)

// Variant selects the sequential test family.
type Variant uint8

// Test variants.
const (
	// VariantSPRT is Wald's sequential probability ratio test against
	// the configured design-point alternative.
	VariantSPRT Variant = iota
	// VariantBayes is the conjugate-mixture Bayes-factor test
	// thresholded at 1/α (Ville's inequality).
	VariantBayes
)

// Config parameterizes the detectors of one Engine. The zero value is
// not usable; start from DefaultConfig.
type Config struct {
	// Alpha and Beta are the target false-positive and false-negative
	// rates. Thresholds: A = log((1−β)/α), B = log(β/(1−α)).
	Alpha, Beta float64
	// Variant selects Wald SPRT (default) or the Bayes-factor test.
	Variant Variant

	// LossP0 and LossP1 are the honest (noise-floor) and design-point
	// alternative drop probabilities of the Bernoulli loss and
	// fabrication detectors.
	LossP0, LossP1 float64

	// DelayRefNS and DelaySigmaNS are the honest link-delta reference
	// mean and sub-Gaussian scale; DelayShiftNS is the design-point
	// mean shift the delay detector tests against. These are
	// deployment constants, like MaxDiff: the verifier reasons from
	// the advertised link characteristics, not from self-calibration
	// an adversary active since epoch 0 could poison.
	DelayRefNS, DelaySigmaNS, DelayShiftNS float64

	// BiasShiftSigma is the design-point marker-vs-σ-sample mean
	// split, in units of the σ-sample delay spread. BiasMinRef is how
	// many σ-sample (non-marker) delays the detector must absorb
	// before it starts scoring markers against them.
	BiasShiftSigma float64
	BiasMinRef     int

	// TrajectoryCap bounds the per-epoch statistic trajectory a
	// detector retains for its verdict (a ring of the most recent
	// epochs), keeping detector state O(1).
	TrajectoryCap int

	// ClipLLR caps how far the statistic may move TOWARD detection on
	// one evidence item. Top-clipping keeps exp(Λ) a supermartingale
	// under H0 (clipped upward steps only shrink it), so Ville's
	// false-positive bound survives — while no single honest outlier
	// can jump a detector from its floor across the threshold; a
	// crossing always takes ≥ (A−B)/ClipLLR consistent items.
	// Honest-ward (downward) moves are never clipped.
	ClipLLR float64
}

// DefaultConfig returns the operating point the continuous pipeline
// uses: α = 1e-3, β = 1e-2, with evidence-class parameters matched to
// the simulator's healthy-path constants (1 ms link delay + 0.1 ms
// uniform jitter → reference 1.05 ms, scale ~30 µs).
func DefaultConfig() Config {
	return Config{
		Alpha:          1e-3,
		Beta:           1e-2,
		LossP0:         0.01,
		LossP1:         0.05,
		DelayRefNS:     1_050_000,
		DelaySigmaNS:   30_000,
		DelayShiftNS:   150_000,
		BiasShiftSigma: 2.0,
		BiasMinRef:     16,
		TrajectoryCap:  64,
		ClipLLR:        2.0,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Alpha <= 0 {
		c.Alpha = d.Alpha
	}
	if c.Beta <= 0 {
		c.Beta = d.Beta
	}
	if c.LossP0 <= 0 {
		c.LossP0 = d.LossP0
	}
	if c.LossP1 <= 0 {
		c.LossP1 = d.LossP1
	}
	if c.DelayRefNS == 0 {
		c.DelayRefNS = d.DelayRefNS
	}
	if c.DelaySigmaNS <= 0 {
		c.DelaySigmaNS = d.DelaySigmaNS
	}
	if c.DelayShiftNS == 0 {
		c.DelayShiftNS = d.DelayShiftNS
	}
	if c.BiasShiftSigma == 0 {
		c.BiasShiftSigma = d.BiasShiftSigma
	}
	if c.BiasMinRef <= 0 {
		c.BiasMinRef = d.BiasMinRef
	}
	if c.TrajectoryCap <= 0 {
		c.TrajectoryCap = d.TrajectoryCap
	}
	if c.ClipLLR <= 0 {
		c.ClipLLR = d.ClipLLR
	}
	return c
}

// Bounds returns Wald's log thresholds for the configured error
// rates: upper A = log((1−β)/α) (reject honest), lower
// B = log(β/(1−α)) (accept honest).
func Bounds(alpha, beta float64) (upper, lower float64) {
	return math.Log((1 - beta) / alpha), math.Log(beta / (1 - alpha))
}

// MinDetectableShiftSigma returns the smallest mean shift, in σ
// units, a Gaussian SPRT at (α, β) can expect to detect within n
// evidence items: the shift where the expected LLR drift over n
// observations just reaches the detection threshold,
// δ/σ = sqrt(2·log((1−β)/α)/n). Used for the attack matrix's
// minimum-detectable-magnitude column.
func MinDetectableShiftSigma(alpha, beta float64, n int) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	upper, _ := Bounds(alpha, beta)
	return math.Sqrt(2 * upper / float64(n))
}

// DefaultClipLLR is the per-item statistic step cap detectors built
// outside an Engine use; see Config.ClipLLR.
const DefaultClipLLR = 2.0

// test is the shared sequential-test core: a statistic with Wald
// thresholds, latch-on-detect, clamp-at-floor-on-clear semantics, and
// a top-clipped per-item step.
type test struct {
	upper, lower float64
	clip         float64
	stat         float64
	n            uint64
	detected     bool
}

func newTest(alpha, beta float64) test {
	u, l := Bounds(alpha, beta)
	return test{upper: u, lower: l, clip: DefaultClipLLR}
}

// step folds one statistic value (absolute, not incremental) and
// applies the thresholds. Upward movement is rate-limited to clip per
// item; the clipped statistic is pointwise ≤ the raw one, so Ville's
// bound on the raw process covers the clipped one.
func (t *test) step(stat float64) State {
	t.n++
	if t.detected {
		return Detected
	}
	if t.clip > 0 && stat > t.stat+t.clip {
		stat = t.stat + t.clip
	}
	t.stat = stat
	if stat >= t.upper {
		t.detected = true
		return Detected
	}
	if stat <= t.lower {
		// Reflecting floor: clamp at B instead of resetting to zero.
		// The first cycle keeps Wald's FP ≤ α; every later excursion
		// must climb A−B from the floor, so its false-positive mass is
		// ≤ e^{−(A−B)} = αβ/((1−α)(1−β)) — long honest streams do not
		// accumulate ~α risk per recycle the way a reset-to-zero
		// repeated SPRT does.
		t.stat = t.lower
		return Cleared
	}
	return Undecided
}

// setClip overrides the per-item upward step cap.
func (t *test) setClip(c float64) { t.clip = c }

// Stat returns the current statistic (log-likelihood ratio or
// log-Bayes-factor).
func (t *test) Stat() float64 { return t.stat }

// N returns the number of evidence items consumed.
func (t *test) N() uint64 { return t.n }

// binTest is a sequential test over a Bernoulli evidence stream.
type binTest interface {
	Observe(success bool) State
	Stat() float64
	N() uint64
}

// meanTest is a sequential test over a real-valued evidence stream.
type meanTest interface {
	Observe(x float64) State
	Stat() float64
	N() uint64
}

// BernoulliSPRT tests H0: p = P0 against H1: p = P1 over a stream of
// Bernoulli trials (success = the lie-consistent outcome, e.g. an
// expected-but-missing downstream record).
type BernoulliSPRT struct {
	test
	llrHit, llrMiss float64
}

// NewBernoulliSPRT builds the test. Requires 0 < p0 < p1 < 1.
func NewBernoulliSPRT(alpha, beta, p0, p1 float64) *BernoulliSPRT {
	return &BernoulliSPRT{
		test:    newTest(alpha, beta),
		llrHit:  math.Log(p1 / p0),
		llrMiss: math.Log((1 - p1) / (1 - p0)),
	}
}

// Observe folds one trial.
func (b *BernoulliSPRT) Observe(success bool) State {
	inc := b.llrMiss
	if success {
		inc = b.llrHit
	}
	return b.step(b.stat + inc)
}

// bayesPriorESS is the equivalent sample size of the Beta prior the
// Bernoulli Bayes factor centers on its design alternative. A vague
// prior would waste mass far from the design point and let early
// honest-looking trials sink the Bayes factor below the accept bound
// (false negatives well above β at the design magnitude); an
// informative prior makes the early predictive ratio match the SPRT's
// while the posterior still adapts to the true attack rate. The FP
// guarantee does not depend on the prior: the Bayes factor is a mean-1
// martingale under H0 for ANY prior, so Ville's bound holds.
const bayesPriorESS = 20

// BernoulliBayes is the Beta-mixture Bayes-factor counterpart of
// BernoulliSPRT: the alternative marginalizes p over a Beta prior
// centered at the design point p1 (the conjugate posterior gives the
// O(1) incremental predictive), the null is the fixed noise floor p0.
// Detection thresholds at log(1/α) by Ville's inequality; crossing
// the lower Wald bound reports Cleared but never restarts the test —
// always-valid tests spend their α once, over the whole run.
type BernoulliBayes struct {
	test
	p0     float64
	a0, b0 float64 // Beta prior pseudo-counts
	k      uint64  // successes this cycle
	m      uint64  // trials this cycle
}

// NewBernoulliBayes builds the test. Requires 0 < p0 < p1 < 1.
func NewBernoulliBayes(alpha, beta, p0, p1 float64) *BernoulliBayes {
	t := newTest(alpha, beta)
	t.upper = math.Log(1 / alpha)
	return &BernoulliBayes{
		test: t, p0: p0,
		a0: bayesPriorESS * p1,
		b0: bayesPriorESS * (1 - p1),
	}
}

// Observe folds one trial.
func (b *BernoulliBayes) Observe(success bool) State {
	// Predictive probability of this trial under the Beta posterior
	// of the current cycle vs under the fixed null.
	var num, den float64
	if success {
		num = (float64(b.k) + b.a0) / (float64(b.m) + bayesPriorESS)
		den = b.p0
	} else {
		num = (float64(b.m-b.k) + b.b0) / (float64(b.m) + bayesPriorESS)
		den = 1 - b.p0
	}
	b.m++
	if success {
		b.k++
	}
	// No reset on Cleared: the Bayes factor is always-valid — Ville's
	// bound covers the unrestarted process at every horizon, and a
	// restart would re-spend α per cycle.
	return b.step(b.stat + math.Log(num/den))
}

// GaussianSPRT tests H0: mean = Ref against H1: mean = Ref + Shift
// for observations with sub-Gaussian scale Sigma. Shift may be
// negative (markers faster than σ-samples). The Gaussian LLR is
// valid for any sub-Gaussian noise of scale ≤ Sigma: lighter tails
// only slow the honest drift toward the lower bound.
type GaussianSPRT struct {
	test
	ref, shift, sigma2 float64
}

// NewGaussianSPRT builds the test. Requires sigma > 0 and shift != 0.
func NewGaussianSPRT(alpha, beta, ref, shift, sigma float64) *GaussianSPRT {
	return &GaussianSPRT{test: newTest(alpha, beta), ref: ref, shift: shift, sigma2: sigma * sigma}
}

// Observe folds one observation.
func (g *GaussianSPRT) Observe(x float64) State {
	// log N(x; ref+shift, σ²) − log N(x; ref, σ²)
	inc := g.shift / g.sigma2 * (x - g.ref - g.shift/2)
	return g.step(g.stat + inc)
}

// GaussianBayes is the Normal-mixture Bayes factor: the alternative
// marginalizes the mean over N(Ref + Shift, Shift²), the null fixes
// it at Ref. Computed in O(1) from the running (n, Σx) sufficient
// statistics; detection thresholds at log(1/α).
type GaussianBayes struct {
	test
	ref, shift, sigma2, tau2 float64
	cn                       uint64  // observations this cycle
	csum                     float64 // Σ(x − ref) this cycle
}

// NewGaussianBayes builds the test. Requires sigma > 0 and shift != 0.
func NewGaussianBayes(alpha, beta, ref, shift, sigma float64) *GaussianBayes {
	t := newTest(alpha, beta)
	t.upper = math.Log(1 / alpha)
	return &GaussianBayes{
		test: t, ref: ref, shift: shift,
		sigma2: sigma * sigma, tau2: shift * shift,
	}
}

// Observe folds one observation.
func (g *GaussianBayes) Observe(x float64) State {
	g.cn++
	g.csum += x - g.ref
	// BF_n = N(x̄; shift, σ²/n + τ²) / N(x̄; 0, σ²/n) on centered data.
	n := float64(g.cn)
	mean := g.csum / n
	v0 := g.sigma2 / n
	v1 := v0 + g.tau2
	d0 := mean * mean / v0
	d1 := (mean - g.shift) * (mean - g.shift) / v1
	logBF := 0.5*(math.Log(v0)-math.Log(v1)) + 0.5*(d0-d1)
	// No reset on Cleared: always-valid, see BernoulliBayes.Observe.
	return g.step(logBF)
}

// BiasDetector scores the marker-vs-σ-sample delay split of one
// domain: σ-sample (non-marker) delays feed a Welford running
// mean/variance reference; each marker delay is standardized against
// it and fed to a Gaussian test for a −BiasShiftSigma mean shift
// (markers systematically faster than the σ-keyed samples they should
// be a uniform subsample of). The reference is O(1) state.
type BiasDetector struct {
	refN           uint64
	refMean, refM2 float64
	minRef         int
	mean           meanTest
}

// NewBiasDetector builds the detector for the configured variant.
func NewBiasDetector(cfg Config) *BiasDetector {
	var mt meanTest
	if cfg.Variant == VariantBayes {
		mt = NewGaussianBayes(cfg.Alpha, cfg.Beta, 0, -cfg.BiasShiftSigma, 1)
	} else {
		mt = NewGaussianSPRT(cfg.Alpha, cfg.Beta, 0, -cfg.BiasShiftSigma, 1)
	}
	return &BiasDetector{minRef: cfg.BiasMinRef, mean: mt}
}

// ObserveRef folds one σ-sample (non-marker) delay into the
// reference distribution.
func (b *BiasDetector) ObserveRef(x float64) {
	b.refN++
	d := x - b.refMean
	b.refMean += d / float64(b.refN)
	b.refM2 += d * (x - b.refMean)
}

// ObserveMarker scores one marker delay against the reference.
// Markers seen before the reference is warm are absorbed without a
// decision.
func (b *BiasDetector) ObserveMarker(x float64) State {
	if b.refN < uint64(b.minRef) || b.refM2 <= 0 {
		return Undecided
	}
	sd := math.Sqrt(b.refM2 / float64(b.refN-1))
	if sd <= 0 {
		return Undecided
	}
	// Predictive scale: a fresh draw scatters around the ESTIMATED
	// mean with variance σ²(1 + 1/n); without the correction the
	// small-sample z-scores have t-tails heavier than the N(0,1) the
	// Gaussian test assumes, inflating false positives at tight α.
	sd *= math.Sqrt(1 + 1/float64(b.refN))
	return b.mean.Observe((x - b.refMean) / sd)
}

// setClip forwards the step cap to the underlying mean test.
func (b *BiasDetector) setClip(c float64) {
	if s, ok := b.mean.(interface{ setClip(float64) }); ok {
		s.setClip(c)
	}
}

// Stat returns the running statistic of the underlying mean test.
func (b *BiasDetector) Stat() float64 { return b.mean.Stat() }

// N returns the number of markers scored.
func (b *BiasDetector) N() uint64 { return b.mean.N() }
