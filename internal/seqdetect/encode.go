package seqdetect

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary wire encoding of SeqVerdict — the record a continuous
// deployment publishes the moment a detector crosses, ahead of the
// epoch's batch report. Little-endian, fixed-width fields, canonical:
// exactly one byte string encodes a given verdict, and Decode rejects
// anything else (non-canonical padding, trailing bytes, out-of-range
// tags) with a typed error. FuzzSeqVerdictDecode holds the codec to
// typed-error-or-valid with byte-identical re-encoding.
//
// Layout:
//   magic[2]="SQ" version[1]=1 class[1]
//   up[4] down[4] epoch[8] frac[8] n[8] stat[8] alpha[8] beta[8]
//   keyLen[2] key[...] domainLen[2] domain[...]
//   trajLen[2] (traj[8])*

const (
	verdictMagic0  = 'S'
	verdictMagic1  = 'Q'
	verdictVersion = 1
	// verdictFixedLen is the byte length up to the variable tail.
	verdictFixedLen = 2 + 1 + 1 + 4 + 4 + 8*6

	// MaxVerdictStringLen bounds the key and domain strings;
	// MaxVerdictTrajectory bounds the trajectory — both far above
	// anything an engine emits, low enough that a hostile length
	// field cannot balloon a decode.
	MaxVerdictStringLen  = 256
	MaxVerdictTrajectory = 1024
)

// ErrCorruptVerdict is the typed error every malformed SeqVerdict
// decode wraps.
var ErrCorruptVerdict = errors.New("seqdetect: corrupt verdict encoding")

// AppendBinary appends the verdict's canonical encoding to dst.
func (v SeqVerdict) AppendBinary(dst []byte) []byte {
	var b [verdictFixedLen]byte
	b[0], b[1], b[2], b[3] = verdictMagic0, verdictMagic1, verdictVersion, byte(v.Class)
	binary.LittleEndian.PutUint32(b[4:8], v.Up)
	binary.LittleEndian.PutUint32(b[8:12], v.Down)
	binary.LittleEndian.PutUint64(b[12:20], v.Epoch)
	binary.LittleEndian.PutUint64(b[20:28], math.Float64bits(v.Frac))
	binary.LittleEndian.PutUint64(b[28:36], v.N)
	binary.LittleEndian.PutUint64(b[36:44], math.Float64bits(v.Stat))
	binary.LittleEndian.PutUint64(b[44:52], math.Float64bits(v.Alpha))
	binary.LittleEndian.PutUint64(b[52:60], math.Float64bits(v.Beta))
	dst = append(dst, b[:]...)
	dst = appendShortString(dst, v.Key)
	dst = appendShortString(dst, v.Domain)
	var t [2]byte
	binary.LittleEndian.PutUint16(t[:], uint16(len(v.Trajectory)))
	dst = append(dst, t[:]...)
	var f [8]byte
	for _, p := range v.Trajectory {
		binary.LittleEndian.PutUint64(f[:], math.Float64bits(p))
		dst = append(dst, f[:]...)
	}
	return dst
}

func appendShortString(dst []byte, s string) []byte {
	var n [2]byte
	binary.LittleEndian.PutUint16(n[:], uint16(len(s)))
	dst = append(dst, n[:]...)
	return append(dst, s...)
}

func decodeShortString(b []byte, what string) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("%w: truncated %s length", ErrCorruptVerdict, what)
	}
	n := int(binary.LittleEndian.Uint16(b[:2]))
	b = b[2:]
	if n > MaxVerdictStringLen {
		return "", nil, fmt.Errorf("%w: %s length %d exceeds %d", ErrCorruptVerdict, what, n, MaxVerdictStringLen)
	}
	if len(b) < n {
		return "", nil, fmt.Errorf("%w: truncated %s", ErrCorruptVerdict, what)
	}
	return string(b[:n]), b[n:], nil
}

// DecodeVerdict parses one verdict from b, which must contain exactly
// one encoding: trailing bytes are rejected, so a successful decode
// re-encodes byte-identically. Malformed input returns an error
// wrapping ErrCorruptVerdict (match with errors.Is).
func DecodeVerdict(b []byte) (SeqVerdict, error) {
	var v SeqVerdict
	if len(b) < verdictFixedLen {
		return v, fmt.Errorf("%w: %d bytes, need at least %d", ErrCorruptVerdict, len(b), verdictFixedLen)
	}
	if b[0] != verdictMagic0 || b[1] != verdictMagic1 {
		return v, fmt.Errorf("%w: bad magic", ErrCorruptVerdict)
	}
	if b[2] != verdictVersion {
		return v, fmt.Errorf("%w: unknown version %d", ErrCorruptVerdict, b[2])
	}
	v.Class = Class(b[3])
	if v.Class < ClassLoss || v.Class > ClassBias {
		return v, fmt.Errorf("%w: unknown class %d", ErrCorruptVerdict, b[3])
	}
	v.Up = binary.LittleEndian.Uint32(b[4:8])
	v.Down = binary.LittleEndian.Uint32(b[8:12])
	v.Epoch = binary.LittleEndian.Uint64(b[12:20])
	v.Frac = math.Float64frombits(binary.LittleEndian.Uint64(b[20:28]))
	v.N = binary.LittleEndian.Uint64(b[28:36])
	v.Stat = math.Float64frombits(binary.LittleEndian.Uint64(b[36:44]))
	v.Alpha = math.Float64frombits(binary.LittleEndian.Uint64(b[44:52]))
	v.Beta = math.Float64frombits(binary.LittleEndian.Uint64(b[52:60]))
	rest := b[verdictFixedLen:]
	var err error
	if v.Key, rest, err = decodeShortString(rest, "key"); err != nil {
		return SeqVerdict{}, err
	}
	if v.Domain, rest, err = decodeShortString(rest, "domain"); err != nil {
		return SeqVerdict{}, err
	}
	if len(rest) < 2 {
		return SeqVerdict{}, fmt.Errorf("%w: truncated trajectory length", ErrCorruptVerdict)
	}
	n := int(binary.LittleEndian.Uint16(rest[:2]))
	rest = rest[2:]
	if n > MaxVerdictTrajectory {
		return SeqVerdict{}, fmt.Errorf("%w: trajectory length %d exceeds %d", ErrCorruptVerdict, n, MaxVerdictTrajectory)
	}
	if len(rest) != n*8 {
		return SeqVerdict{}, fmt.Errorf("%w: trajectory wants %d bytes, have %d", ErrCorruptVerdict, n*8, len(rest))
	}
	if n > 0 {
		v.Trajectory = make([]float64, n)
		for i := range v.Trajectory {
			v.Trajectory[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[:8]))
			rest = rest[8:]
		}
	}
	return v, nil
}
