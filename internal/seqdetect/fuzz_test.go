package seqdetect

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// fuzzVerdict is a representative verdict for seeding.
func fuzzVerdict() SeqVerdict {
	return SeqVerdict{
		Class:      ClassLoss,
		Up:         3,
		Down:       4,
		Key:        "10.1.0.0/16->172.16.0.0/16",
		Epoch:      7,
		Frac:       0.375,
		N:          12345,
		Stat:       7.25,
		Alpha:      1e-3,
		Beta:       1e-2,
		Trajectory: []float64{-1.5, 0.25, 7.25},
	}
}

// FuzzSeqVerdictDecode: DecodeVerdict must be total — any byte string
// either parses into exactly one verdict whose re-encoding reproduces
// the input byte-for-byte, or returns an error wrapping
// ErrCorruptVerdict. It must never panic, whatever the length fields
// claim.
func FuzzSeqVerdictDecode(f *testing.F) {
	f.Add(fuzzVerdict().AppendBinary(nil))
	bias := SeqVerdict{Class: ClassBias, Up: 5, Down: 6, Domain: "X",
		Epoch: 1, Frac: 1, N: 9, Stat: 6.9, Alpha: 1e-2, Beta: 1e-1}
	f.Add(bias.AppendBinary(nil))
	f.Add(SeqVerdict{Class: ClassDelay, Epoch: 0, Frac: 0.01}.AppendBinary(nil))
	f.Add([]byte{})
	f.Add([]byte{'S', 'Q'})
	f.Add([]byte{'S', 'Q', verdictVersion, 9})
	trunc := fuzzVerdict().AppendBinary(nil)
	f.Add(trunc[:len(trunc)-5])
	// Hostile trajectory length backed by nothing.
	hostile := fuzzVerdict()
	hostile.Trajectory = nil
	h := hostile.AppendBinary(nil)
	h[len(h)-2], h[len(h)-1] = 0xff, 0xff
	f.Add(h)

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeVerdict(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptVerdict) {
				t.Fatalf("untyped decode error %v (%T)", err, err)
			}
			return
		}
		re := v.AppendBinary(nil)
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encoding differs from input:\n in: %x\nout: %x", data, re)
		}
	})
}

func TestVerdictRoundTrip(t *testing.T) {
	cases := []SeqVerdict{
		fuzzVerdict(),
		{},
		{Class: ClassBias, Domain: "domain-X", Epoch: math.MaxUint64,
			Frac: 1, N: math.MaxUint64, Stat: math.Inf(1), Alpha: 1e-9, Beta: 0.5},
	}
	for i, v := range cases {
		enc := v.AppendBinary(nil)
		got, err := DecodeVerdict(enc)
		if err != nil {
			// The zero verdict has Class 0, which is not a valid wire
			// class — it must decode to a typed error, not silently.
			if v.Class == 0 && errors.Is(err, ErrCorruptVerdict) {
				continue
			}
			t.Fatalf("case %d: decode: %v", i, err)
		}
		re := got.AppendBinary(nil)
		if !bytes.Equal(enc, re) {
			t.Fatalf("case %d: encode→decode→encode not byte-identical", i)
		}
	}
}

func TestVerdictDecodeRejectsTrailing(t *testing.T) {
	enc := append(fuzzVerdict().AppendBinary(nil), 0)
	if _, err := DecodeVerdict(enc); !errors.Is(err, ErrCorruptVerdict) {
		t.Fatalf("trailing byte accepted: %v", err)
	}
}
