package seqdetect

import (
	"fmt"
	"testing"

	"vpm/internal/stats"
)

// The Monte-Carlo guarantee harness: for each detector family at three
// (α, β) operating points, run M independent seeded simulations over a
// fixed evidence horizon and check the empirical error rates against
// the configured bounds within Wilson-interval slack.
//
// Each family is tested against the guarantee it actually provides:
//
//   - SPRT variants (repeated test with a reflecting floor): Wald's
//     bounds hold PER TEST CYCLE. FP: honest stream to the first
//     terminal decision, P(Detected) ≤ α. FN: design-magnitude lying
//     stream to the first decision, P(Cleared) ≤ β.
//   - Bayes variants (always-valid, never restarted): Ville's
//     inequality holds at EVERY horizon. FP: honest stream over a
//     fixed horizon, P(fires anywhere) ≤ α. FN: design-magnitude
//     stream, P(not fired by the horizon) ≤ β.
//
// The check is one-sided: the Wilson 95% lower bound of the observed
// rate must not exceed the configured bound — if even the interval's
// low edge is above α (resp. β), the guarantee is empirically broken,
// not just unlucky.

type opPoint struct {
	alpha, beta float64
	sims        int
}

// Three operating points; simulation counts scale with the bound so
// the Wilson interval has resolving power at each point.
var opPoints = []opPoint{
	{alpha: 1e-2, beta: 1e-2, sims: 3000},
	{alpha: 1e-3, beta: 1e-2, sims: 8000},
	{alpha: 1e-2, beta: 1e-1, sims: 3000},
}

// horizon is the per-sim evidence budget of the always-valid framing:
// the order of items one detector sees across a multi-epoch run.
const horizon = 10_000

// decisionCap bounds a first-decision sim; SPRT cycles at these
// operating points decide within hundreds of items.
const decisionCap = 1_000_000

// decider is one simulated detector run: step() advances one evidence
// item and returns the test state.
type decider func() State

// firstDecision drives one sim to its first terminal state (SPRT
// cycle framing).
func firstDecision(t *testing.T, step decider) State {
	t.Helper()
	for i := 0; i < decisionCap; i++ {
		switch st := step(); st {
		case Detected, Cleared:
			return st
		}
	}
	t.Fatal("sequential test reached no decision within the step cap")
	return Undecided
}

// detectedWithin drives one sim for the horizon and reports whether
// the detector ever fired (always-valid framing).
func detectedWithin(step decider) bool {
	for i := 0; i < horizon; i++ {
		if step() == Detected {
			return true
		}
	}
	return false
}

// assertRate checks the empirical k/n error rate against bound within
// Wilson slack.
func assertRate(t *testing.T, what string, k, n int, bound float64) {
	t.Helper()
	lo, _ := stats.WilsonInterval(k, n, 0.95)
	if lo > bound {
		t.Errorf("%s: empirical rate %d/%d = %.5f (Wilson lo %.5f) exceeds bound %.5f",
			what, k, n, float64(k)/float64(n), lo, bound)
	}
}

// guaranteeCase builds honest and lying single-detector sims for one
// detector family at one operating point. alwaysValid selects the
// horizon framing (Bayes) over the Wald-cycle framing (SPRT).
type guaranteeCase struct {
	name        string
	alwaysValid bool
	honest      func(op opPoint, rng *stats.RNG) decider
	lying       func(op opPoint, rng *stats.RNG) decider
}

const (
	gLossP0  = 0.01
	gLossP1  = 0.05
	gRef     = 1_050_000.0
	gShift   = 150_000.0
	gSigma   = 30_000.0
	gBiasSig = 2.0
)

func guaranteeCases() []guaranteeCase {
	bern := func(p float64, mk func(op opPoint) binTest) func(opPoint, *stats.RNG) decider {
		return func(op opPoint, rng *stats.RNG) decider {
			d := mk(op)
			return func() State { return d.Observe(rng.Bool(p)) }
		}
	}
	gauss := func(mean float64, mk func(op opPoint) meanTest) func(opPoint, *stats.RNG) decider {
		return func(op opPoint, rng *stats.RNG) decider {
			d := mk(op)
			return func() State { return d.Observe(mean + gSigma*rng.NormFloat64()) }
		}
	}
	mkBernSPRT := func(op opPoint) binTest { return NewBernoulliSPRT(op.alpha, op.beta, gLossP0, gLossP1) }
	mkBernBayes := func(op opPoint) binTest { return NewBernoulliBayes(op.alpha, op.beta, gLossP0, gLossP1) }
	mkGaussSPRT := func(op opPoint) meanTest { return NewGaussianSPRT(op.alpha, op.beta, gRef, gShift, gSigma) }
	mkGaussBayes := func(op opPoint) meanTest { return NewGaussianBayes(op.alpha, op.beta, gRef, gShift, gSigma) }

	bias := func(markerShift float64) func(opPoint, *stats.RNG) decider {
		return func(op opPoint, rng *stats.RNG) decider {
			d := NewBiasDetector(Config{
				Alpha: op.alpha, Beta: op.beta,
				BiasShiftSigma: gBiasSig, BiasMinRef: 16,
			}.withDefaults())
			i := 0
			return func() State {
				// Interleave 3 σ-sample reference delays per marker,
				// like the ~25% marker share of the simulator.
				for j := 0; j < 3; j++ {
					d.ObserveRef(gRef + gSigma*rng.NormFloat64())
				}
				i++
				return d.ObserveMarker(gRef + markerShift*gSigma + gSigma*rng.NormFloat64())
			}
		}
	}

	return []guaranteeCase{
		{
			name:   "bernoulli-sprt",
			honest: bern(gLossP0, mkBernSPRT),
			lying:  bern(gLossP1, mkBernSPRT),
		},
		{
			name:        "bernoulli-bayes",
			alwaysValid: true,
			honest:      bern(gLossP0, mkBernBayes),
			lying:       bern(gLossP1, mkBernBayes),
		},
		{
			name:   "gaussian-sprt",
			honest: gauss(gRef, mkGaussSPRT),
			lying:  gauss(gRef+gShift, mkGaussSPRT),
		},
		{
			name:        "gaussian-bayes",
			alwaysValid: true,
			honest:      gauss(gRef, mkGaussBayes),
			lying:       gauss(gRef+gShift, mkGaussBayes),
		},
		{
			name:   "bias",
			honest: bias(0),
			lying:  bias(-gBiasSig),
		},
	}
}

// TestGuaranteeFalsePositiveRate: honest streams, empirical
// P(detector fires within the horizon) ≤ α within Wilson slack, for
// every detector at every operating point. Seeded and deterministic.
func TestGuaranteeFalsePositiveRate(t *testing.T) {
	for pi, op := range opPoints {
		for ci, gc := range guaranteeCases() {
			t.Run(fmt.Sprintf("%s/alpha=%g,beta=%g", gc.name, op.alpha, op.beta), func(t *testing.T) {
				rng := stats.NewRNG(0xF0 ^ uint64(pi*31+ci))
				sims := op.sims
				if gc.alwaysValid && sims > 4000 {
					sims = 4000 // horizon sims are ~100× longer than cycles
				}
				detected := 0
				for s := 0; s < sims; s++ {
					sim := gc.honest(op, rng.Split())
					if gc.alwaysValid {
						if detectedWithin(sim) {
							detected++
						}
					} else if firstDecision(t, sim) == Detected {
						detected++
					}
				}
				assertRate(t, "false-positive", detected, sims, op.alpha)
			})
		}
	}
}

// TestGuaranteeFalseNegativeRate: design-magnitude lying streams,
// empirical P(no detection within the horizon) ≤ β within Wilson
// slack.
func TestGuaranteeFalseNegativeRate(t *testing.T) {
	for pi, op := range opPoints {
		for ci, gc := range guaranteeCases() {
			t.Run(fmt.Sprintf("%s/alpha=%g,beta=%g", gc.name, op.alpha, op.beta), func(t *testing.T) {
				rng := stats.NewRNG(0xF4 ^ uint64(pi*37+ci))
				missed := 0
				for s := 0; s < op.sims; s++ {
					sim := gc.lying(op, rng.Split())
					if gc.alwaysValid {
						if !detectedWithin(sim) {
							missed++
						}
					} else if firstDecision(t, sim) == Cleared {
						missed++
					}
				}
				assertRate(t, "false-negative", missed, op.sims, op.beta)
			})
		}
	}
}

// TestGuaranteeEngineHonestRun drives whole Engines over honest
// multi-epoch evidence and bounds the run-level false-positive rate:
// the reflecting floor keeps a long honest run's total FP mass at
// ~α (first cycle) + negligible recycled excursions, so across M
// seeded engine runs the fraction with ANY verdict must stay within
// Wilson slack of α.
func TestGuaranteeEngineHonestRun(t *testing.T) {
	const (
		runs       = 600
		epochs     = 8
		perEpoch   = 2000
		markersPer = 120
	)
	cfg := Config{} // defaults: alpha 1e-3, beta 1e-2
	alpha := cfg.withDefaults().Alpha
	rng := stats.NewRNG(0xE17)
	flagged := 0
	for r := 0; r < runs; r++ {
		rr := rng.Split()
		e := NewEngine(cfg)
		link := Scope{Key: "a->b", Up: 1, Down: 2}
		dom := Scope{Domain: "X", Up: 2, Down: 3}
		any := false
		for ep := uint64(0); ep < epochs; ep++ {
			loss := make([]Evidence, perEpoch)
			for i := range loss {
				if rr.Bool(gLossP0) {
					loss[i] = Evidence{Kind: KindDrop}
				} else {
					loss[i] = Evidence{Kind: KindKeep}
				}
			}
			e.Observe(link, ClassLoss, loss)
			deltas := make([]Evidence, perEpoch/2)
			for i := range deltas {
				deltas[i] = Evidence{Kind: KindDelta, Value: gRef + gSigma*rr.NormFloat64()}
			}
			e.Observe(link, ClassDelay, deltas)
			biasItems := make([]Evidence, 0, 4*markersPer)
			for i := 0; i < markersPer; i++ {
				for j := 0; j < 3; j++ {
					biasItems = append(biasItems, Evidence{Kind: KindOtherDelta, Value: gRef + gSigma*rr.NormFloat64()})
				}
				biasItems = append(biasItems, Evidence{Kind: KindMarkerDelta, Value: gRef + gSigma*rr.NormFloat64()})
			}
			e.Observe(dom, ClassBias, biasItems)
			if len(e.EndEpoch(ep)) > 0 {
				any = true
			}
		}
		if any {
			flagged++
		}
	}
	// Three detectors per run; allow the union bound.
	assertRate(t, "engine honest-run false-positive", flagged, runs, 3*alpha)
}
