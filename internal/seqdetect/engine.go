package seqdetect

// The Engine multiplexes the per-(link, key) detectors of one rolling
// verifier: the core pipeline feeds it each epoch's evidence batches
// (in deterministic work order, from one goroutine) and closes the
// epoch with EndEpoch, which snapshots every detector's trajectory
// and emits a SeqVerdict for each detector that crossed its detection
// threshold during the epoch.
//
// Crossing points are recorded as global evidence indexes, so they
// are invariant under re-chunking of the evidence stream (the same
// packets fed in different batch sizes cross at the same item — a
// property test pins this). The fractional position of the crossing
// within its epoch's evidence — the "detected mid-epoch" fraction —
// is derived at EndEpoch from the epoch's total item count, which is
// equally chunking-invariant.

// Class identifies the evidence class a detector judges.
type Class uint8

// Evidence classes. The numbering is part of the SeqVerdict wire
// format; do not reorder.
const (
	// ClassLoss is suppression: packets the upstream HOP delivered
	// that the downstream HOP was expected to report but did not.
	ClassLoss Class = 1
	// ClassFabricate is the mirror direction: records the downstream
	// HOP claims that the upstream HOP never delivered.
	ClassFabricate Class = 2
	// ClassDelay is delay underreporting: the inter-HOP link delta
	// mean-shifted beyond the advertised reference.
	ClassDelay Class = 3
	// ClassBias is the marker-vs-σ-sample delay split of a domain.
	ClassBias Class = 4
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassLoss:
		return "loss"
	case ClassFabricate:
		return "fabricate"
	case ClassDelay:
		return "delay"
	case ClassBias:
		return "bias"
	}
	return "unknown"
}

// Scope names the path element one detector watches: an inter-domain
// link (Up, Down HOPs) of one traffic key, or a domain segment (Domain
// non-empty) for bias detectors.
type Scope struct {
	// Key is the traffic key's string form ("src->dst").
	Key string
	// Up and Down are the HOP ids delimiting the link or domain
	// segment.
	Up, Down uint32
	// Domain is the domain name for bias scopes, empty for links.
	Domain string
}

// Kind tags one evidence item.
type Kind uint8

// Evidence kinds.
const (
	// KindKeep is a Bernoulli trial without the lie-consistent
	// outcome: a claimed packet matched by the other end.
	KindKeep Kind = iota
	// KindDrop is a lie-consistent Bernoulli trial: a claimed packet
	// expected but missing at the other end.
	KindDrop
	// KindDelta carries a matched sample's link delta (ns) for the
	// delay detector.
	KindDelta
	// KindMarkerDelta carries a marker sample's domain delay (ns) for
	// the bias detector.
	KindMarkerDelta
	// KindOtherDelta carries a σ-sample (non-marker) domain delay
	// (ns) — the bias detector's reference population.
	KindOtherDelta
)

// Evidence is one item of a detector's stream.
type Evidence struct {
	Kind  Kind
	Value float64
}

// detKey identifies one detector.
type detKey struct {
	scope Scope
	class Class
}

// detState is one detector plus the bookkeeping the engine needs to
// emit its verdict.
type detState struct {
	key  detKey
	bin  binTest
	mean meanTest
	bias *BiasDetector

	state      State
	emitted    bool
	items      uint64 // evidence items consumed (trials/scored samples)
	epochStart uint64 // items at the start of the current epoch
	crossItem  uint64 // items at the detection crossing (1-based)
	traj       []float64
	trajCap    int
}

// stat returns the detector's current statistic.
func (d *detState) stat() float64 {
	switch {
	case d.bin != nil:
		return d.bin.Stat()
	case d.bias != nil:
		return d.bias.Stat()
	default:
		return d.mean.Stat()
	}
}

// pushTraj appends one per-epoch statistic snapshot, keeping the ring
// bounded.
func (d *detState) pushTraj(v float64) {
	if len(d.traj) >= d.trajCap {
		copy(d.traj, d.traj[1:])
		d.traj = d.traj[:len(d.traj)-1]
	}
	d.traj = append(d.traj, v)
}

// Engine owns the detectors of one rolling verifier. Not safe for
// concurrent use: the rolling pipeline feeds it from its single
// verification goroutine, in deterministic work order.
type Engine struct {
	cfg   Config
	dets  map[detKey]*detState
	order []*detState // first-seen order: deterministic EndEpoch sweeps
	done  []SeqVerdict
}

// NewEngine builds an engine; zero cfg fields take defaults.
func NewEngine(cfg Config) *Engine {
	return &Engine{cfg: cfg.withDefaults(), dets: make(map[detKey]*detState)}
}

// Config returns the engine's effective (default-filled) config.
func (e *Engine) Config() Config { return e.cfg }

// detector finds or creates the detector for (scope, class).
func (e *Engine) detector(scope Scope, class Class) *detState {
	k := detKey{scope: scope, class: class}
	if d, ok := e.dets[k]; ok {
		return d
	}
	d := &detState{key: k, trajCap: e.cfg.TrajectoryCap}
	c := e.cfg
	switch class {
	case ClassLoss, ClassFabricate:
		if c.Variant == VariantBayes {
			d.bin = NewBernoulliBayes(c.Alpha, c.Beta, c.LossP0, c.LossP1)
		} else {
			d.bin = NewBernoulliSPRT(c.Alpha, c.Beta, c.LossP0, c.LossP1)
		}
		if s, ok := d.bin.(interface{ setClip(float64) }); ok {
			s.setClip(c.ClipLLR)
		}
	case ClassDelay:
		if c.Variant == VariantBayes {
			d.mean = NewGaussianBayes(c.Alpha, c.Beta, c.DelayRefNS, c.DelayShiftNS, c.DelaySigmaNS)
		} else {
			d.mean = NewGaussianSPRT(c.Alpha, c.Beta, c.DelayRefNS, c.DelayShiftNS, c.DelaySigmaNS)
		}
		if s, ok := d.mean.(interface{ setClip(float64) }); ok {
			s.setClip(c.ClipLLR)
		}
	case ClassBias:
		d.bias = NewBiasDetector(c)
		d.bias.setClip(c.ClipLLR)
	}
	e.dets[k] = d
	e.order = append(e.order, d)
	return d
}

// Observe feeds one evidence batch to the (scope, class) detector.
// Items irrelevant to the class are skipped, so callers may reuse one
// mixed slice across classes. Batching carries no meaning: any
// chunking of the same stream yields the same crossings.
func (e *Engine) Observe(scope Scope, class Class, items []Evidence) {
	d := e.detector(scope, class)
	for _, it := range items {
		if d.state == Detected {
			// Keep tallying the epoch's evidence so the crossing's
			// mid-epoch fraction divides by the full epoch, not a
			// stream truncated at detection.
			if countable(class, it.Kind) {
				d.items++
			}
			continue
		}
		var st State
		counted := true
		switch class {
		case ClassLoss, ClassFabricate:
			switch it.Kind {
			case KindDrop:
				st = d.bin.Observe(true)
			case KindKeep:
				st = d.bin.Observe(false)
			default:
				counted = false
			}
		case ClassDelay:
			if it.Kind == KindDelta {
				st = d.mean.Observe(it.Value)
			} else {
				counted = false
			}
		case ClassBias:
			switch it.Kind {
			case KindOtherDelta:
				d.bias.ObserveRef(it.Value)
				counted = false
			case KindMarkerDelta:
				st = d.bias.ObserveMarker(it.Value)
			default:
				counted = false
			}
		}
		if !counted {
			continue
		}
		d.items++
		if st == Detected {
			d.state = Detected
			d.crossItem = d.items
		}
	}
}

// countable reports whether an evidence kind counts as one stream
// item for the class — the denominator of the mid-epoch crossing
// fraction.
func countable(class Class, k Kind) bool {
	switch class {
	case ClassLoss, ClassFabricate:
		return k == KindKeep || k == KindDrop
	case ClassDelay:
		return k == KindDelta
	case ClassBias:
		return k == KindMarkerDelta
	}
	return false
}

// EndEpoch closes one epoch: every detector snapshots its statistic
// into its trajectory, and each detector that crossed detection during
// the epoch emits its SeqVerdict (once). epoch is the epoch id the
// evidence batches since the previous EndEpoch belonged to.
func (e *Engine) EndEpoch(epoch uint64) []SeqVerdict {
	var out []SeqVerdict
	for _, d := range e.order {
		d.pushTraj(d.stat())
		if d.state == Detected && !d.emitted {
			span := d.items - d.epochStart
			frac := 1.0
			if span > 0 {
				frac = float64(d.crossItem-d.epochStart) / float64(span)
			}
			v := SeqVerdict{
				Class:  d.key.class,
				Up:     d.key.scope.Up,
				Down:   d.key.scope.Down,
				Key:    d.key.scope.Key,
				Domain: d.key.scope.Domain,
				Epoch:  epoch,
				Frac:   frac,
				N:      d.crossItem,
				Stat:   d.stat(),
				Alpha:  e.cfg.Alpha,
				Beta:   e.cfg.Beta,
			}
			v.Trajectory = append(v.Trajectory, d.traj...)
			out = append(out, v)
			e.done = append(e.done, v)
			d.emitted = true
		}
		d.epochStart = d.items
	}
	return out
}

// Verdicts returns every verdict emitted so far, in emission order.
func (e *Engine) Verdicts() []SeqVerdict { return e.done }

// SeqVerdict is an early sequential verdict: the (link, key) scope,
// evidence class, crossing epoch with its mid-epoch fraction, the
// statistic trajectory, and the configured error bounds — everything
// a consumer needs to audit the decision.
type SeqVerdict struct {
	Class Class  `json:"class"`
	Up    uint32 `json:"up"`
	Down  uint32 `json:"down"`
	Key   string `json:"key,omitempty"`
	// Domain is set for bias verdicts.
	Domain string `json:"domain,omitempty"`
	// Epoch is the epoch whose evidence crossed the threshold; Frac
	// in (0, 1] is how far through that epoch's evidence the crossing
	// landed. EpochsToVerdict() = Epoch + Frac is the detection
	// latency in epochs from stream start.
	Epoch uint64  `json:"epoch"`
	Frac  float64 `json:"frac"`
	// N is the total evidence items the detector had consumed at the
	// crossing; Stat is the statistic at emission.
	N    uint64  `json:"n"`
	Stat float64 `json:"stat"`
	// Alpha and Beta are the configured error bounds the crossing
	// thresholds were derived from.
	Alpha float64 `json:"alpha"`
	Beta  float64 `json:"beta"`
	// Trajectory is the per-epoch statistic trail up to and including
	// the crossing epoch (bounded by Config.TrajectoryCap).
	Trajectory []float64 `json:"trajectory,omitempty"`
}

// EpochsToVerdict is the detection latency in (fractional) epochs
// from the start of the evidence stream: crossing at 40% through
// epoch 0's evidence is 0.4 — a mid-epoch verdict the batch arm
// cannot produce before 1.0.
func (v SeqVerdict) EpochsToVerdict() float64 {
	return float64(v.Epoch) + v.Frac
}
