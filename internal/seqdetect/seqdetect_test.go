package seqdetect

import (
	"math"
	"testing"

	"vpm/internal/stats"
)

func TestBounds(t *testing.T) {
	upper, lower := Bounds(1e-3, 1e-2)
	if upper <= 0 || lower >= 0 {
		t.Fatalf("bounds must bracket zero: upper=%v lower=%v", upper, lower)
	}
	wantU := math.Log((1 - 1e-2) / 1e-3)
	wantL := math.Log(1e-2 / (1 - 1e-3))
	if math.Abs(upper-wantU) > 1e-12 || math.Abs(lower-wantL) > 1e-12 {
		t.Fatalf("bounds = (%v, %v), want (%v, %v)", upper, lower, wantU, wantL)
	}
}

func TestMinDetectableShiftSigma(t *testing.T) {
	if !math.IsInf(MinDetectableShiftSigma(1e-3, 1e-2, 0), 1) {
		t.Fatal("n=0 must be undetectable (infinite shift)")
	}
	// More evidence → smaller detectable shift, monotonically.
	prev := math.Inf(1)
	for _, n := range []int{10, 100, 1000, 10000} {
		s := MinDetectableShiftSigma(1e-3, 1e-2, n)
		if s <= 0 || s >= prev {
			t.Fatalf("MinDetectableShiftSigma(n=%d) = %v, want decreasing positive", n, s)
		}
		prev = s
	}
	// Tighter α raises the bar for the same n.
	if MinDetectableShiftSigma(1e-5, 1e-2, 100) <= MinDetectableShiftSigma(1e-2, 1e-2, 100) {
		t.Fatal("tighter alpha must require a larger shift")
	}
}

func TestBernoulliSPRTDetectsElevatedRate(t *testing.T) {
	b := NewBernoulliSPRT(1e-3, 1e-2, 0.01, 0.05)
	rng := stats.NewRNG(7)
	var st State
	for i := 0; i < 100_000; i++ {
		st = b.Observe(rng.Bool(0.10))
		if st == Detected {
			break
		}
	}
	if st != Detected {
		t.Fatalf("10%% drop rate vs p1=5%% design point not detected in 100k trials (stat=%v)", b.Stat())
	}
}

func TestBernoulliSPRTClearsHonestRate(t *testing.T) {
	b := NewBernoulliSPRT(1e-3, 1e-2, 0.01, 0.05)
	rng := stats.NewRNG(11)
	cleared := 0
	for i := 0; i < 10_000; i++ {
		if b.Observe(rng.Bool(0.01)) == Cleared {
			cleared++
		}
	}
	if cleared == 0 {
		t.Fatal("honest rate never cleared the repeated SPRT in 10k trials")
	}
	if b.Observe(false) == Detected {
		t.Fatal("spurious detection on honest stream")
	}
}

func TestDetectionLatches(t *testing.T) {
	b := NewBernoulliSPRT(1e-2, 1e-2, 0.01, 0.5)
	for i := 0; i < 10_000; i++ {
		b.Observe(true)
	}
	if b.Observe(false) != Detected {
		t.Fatal("detection must latch even when later evidence looks honest")
	}
}

func TestGaussianSPRTDetectsShift(t *testing.T) {
	g := NewGaussianSPRT(1e-3, 1e-2, 1000, 100, 50)
	rng := stats.NewRNG(3)
	var st State
	for i := 0; i < 10_000; i++ {
		st = g.Observe(1000 + 100 + 50*rng.NormFloat64())
		if st == Detected {
			break
		}
	}
	if st != Detected {
		t.Fatalf("design-point shift not detected (stat=%v)", g.Stat())
	}
}

func TestGaussianSPRTNegativeShift(t *testing.T) {
	g := NewGaussianSPRT(1e-3, 1e-2, 0, -2, 1)
	rng := stats.NewRNG(5)
	var st State
	for i := 0; i < 10_000; i++ {
		st = g.Observe(-2 + rng.NormFloat64())
		if st == Detected {
			break
		}
	}
	if st != Detected {
		t.Fatal("negative design shift (marker bias direction) not detected")
	}
}

func TestBayesVariantsDetect(t *testing.T) {
	bb := NewBernoulliBayes(1e-3, 1e-2, 0.01, 0.05)
	rng := stats.NewRNG(13)
	var st State
	for i := 0; i < 100_000; i++ {
		st = bb.Observe(rng.Bool(0.10))
		if st == Detected {
			break
		}
	}
	if st != Detected {
		t.Fatal("Bernoulli Bayes factor never crossed 1/alpha on a 10x elevated rate")
	}

	gb := NewGaussianBayes(1e-3, 1e-2, 1000, 100, 50)
	st = Undecided
	for i := 0; i < 100_000; i++ {
		st = gb.Observe(1000 + 100 + 50*rng.NormFloat64())
		if st == Detected {
			break
		}
	}
	if st != Detected {
		t.Fatal("Gaussian Bayes factor never crossed 1/alpha on the design shift")
	}
}

func TestBiasDetectorWarmup(t *testing.T) {
	cfg := DefaultConfig()
	b := NewBiasDetector(cfg)
	// Markers before the reference is warm must not decide.
	for i := 0; i < cfg.BiasMinRef; i++ {
		if st := b.ObserveMarker(0); st != Undecided {
			t.Fatalf("marker %d before warmup decided %v", i, st)
		}
	}
}

func TestBiasDetectorDetectsFastMarkers(t *testing.T) {
	cfg := DefaultConfig()
	b := NewBiasDetector(cfg)
	rng := stats.NewRNG(17)
	var st State
	for i := 0; i < 50_000; i++ {
		// σ-samples at 1000±50; markers 3σ faster.
		b.ObserveRef(1000 + 50*rng.NormFloat64())
		if i%4 == 0 {
			st = b.ObserveMarker(1000 - 150 + 50*rng.NormFloat64())
			if st == Detected {
				break
			}
		}
	}
	if st != Detected {
		t.Fatal("3-sigma-fast markers never detected")
	}
}

func TestBiasDetectorHonestMarkers(t *testing.T) {
	cfg := DefaultConfig()
	b := NewBiasDetector(cfg)
	rng := stats.NewRNG(19)
	for i := 0; i < 50_000; i++ {
		b.ObserveRef(1000 + 50*rng.NormFloat64())
		if i%4 == 0 {
			if st := b.ObserveMarker(1000 + 50*rng.NormFloat64()); st == Detected {
				t.Fatalf("honest markers detected at i=%d", i)
			}
		}
	}
}

// makeLossStream builds a deterministic evidence stream with drops at
// the given rate.
func makeLossStream(n int, dropRate float64, seed uint64) []Evidence {
	rng := stats.NewRNG(seed)
	out := make([]Evidence, n)
	for i := range out {
		if rng.Bool(dropRate) {
			out[i] = Evidence{Kind: KindDrop}
		} else {
			out[i] = Evidence{Kind: KindKeep}
		}
	}
	return out
}

func TestEngineEmitsVerdictOnce(t *testing.T) {
	e := NewEngine(Config{})
	scope := Scope{Key: "a->b", Up: 1, Down: 2}
	stream := makeLossStream(4000, 0.30, 23)
	e.Observe(scope, ClassLoss, stream[:2000])
	vs := e.EndEpoch(0)
	if len(vs) != 1 {
		t.Fatalf("epoch 0: got %d verdicts, want 1", len(vs))
	}
	v := vs[0]
	if v.Class != ClassLoss || v.Up != 1 || v.Down != 2 || v.Key != "a->b" {
		t.Fatalf("verdict scope mismatch: %+v", v)
	}
	if v.Epoch != 0 || v.Frac <= 0 || v.Frac > 1 {
		t.Fatalf("verdict epoch/frac out of range: %+v", v)
	}
	if v.Frac == 1 {
		t.Fatalf("30%% drops over 2000 trials should cross mid-epoch, got frac=1")
	}
	if v.Alpha != e.Config().Alpha || v.Beta != e.Config().Beta {
		t.Fatalf("verdict must carry configured error bounds: %+v", v)
	}
	if len(v.Trajectory) == 0 {
		t.Fatal("verdict must carry the statistic trajectory")
	}
	// Later epochs must not re-emit.
	e.Observe(scope, ClassLoss, stream[2000:])
	if vs := e.EndEpoch(1); len(vs) != 0 {
		t.Fatalf("epoch 1 re-emitted %d verdicts", len(vs))
	}
	if got := len(e.Verdicts()); got != 1 {
		t.Fatalf("Verdicts() = %d, want 1", got)
	}
}

func TestEngineEpochsToVerdict(t *testing.T) {
	v := SeqVerdict{Epoch: 2, Frac: 0.25}
	if got := v.EpochsToVerdict(); got != 2.25 {
		t.Fatalf("EpochsToVerdict = %v, want 2.25", got)
	}
}

func TestEngineHonestStreamStaysQuiet(t *testing.T) {
	e := NewEngine(Config{})
	scope := Scope{Key: "a->b", Up: 1, Down: 2}
	for ep := uint64(0); ep < 8; ep++ {
		e.Observe(scope, ClassLoss, makeLossStream(5000, 0.01, 100+ep))
		if vs := e.EndEpoch(ep); len(vs) != 0 {
			t.Fatalf("honest stream flagged at epoch %d: %+v", ep, vs)
		}
	}
}

// TestRechunkingInvariance is the property test the issue names: the
// same evidence stream fed in different chunk sizes must yield
// identical crossing points (epoch, frac, N) for every detector.
func TestRechunkingInvariance(t *testing.T) {
	stream := makeLossStream(6000, 0.08, 31)
	deltas := make([]Evidence, 3000)
	rng := stats.NewRNG(37)
	for i := range deltas {
		deltas[i] = Evidence{Kind: KindDelta, Value: 1_050_000 + 150_000 + 30_000*rng.NormFloat64()}
	}
	epochLen := 1500 // loss items per epoch (deltas: half)

	run := func(chunk int) []SeqVerdict {
		e := NewEngine(Config{})
		lossScope := Scope{Key: "a->b", Up: 1, Down: 2}
		delayScope := Scope{Key: "a->b", Up: 2, Down: 3}
		var all []SeqVerdict
		for ep := 0; ep < 4; ep++ {
			ls := stream[ep*epochLen : (ep+1)*epochLen]
			ds := deltas[ep*epochLen/2 : (ep+1)*epochLen/2]
			for i := 0; i < len(ls); i += chunk {
				end := i + chunk
				if end > len(ls) {
					end = len(ls)
				}
				e.Observe(lossScope, ClassLoss, ls[i:end])
			}
			for i := 0; i < len(ds); i += chunk {
				end := i + chunk
				if end > len(ds) {
					end = len(ds)
				}
				e.Observe(delayScope, ClassDelay, ds[i:end])
			}
			all = append(all, e.EndEpoch(uint64(ep))...)
		}
		return all
	}

	ref := run(len(stream)) // one big chunk
	if len(ref) == 0 {
		t.Fatal("reference run detected nothing; test needs a detectable stream")
	}
	for _, chunk := range []int{1, 7, 64, 333, 1500} {
		got := run(chunk)
		if len(got) != len(ref) {
			t.Fatalf("chunk=%d: %d verdicts, want %d", chunk, len(got), len(ref))
		}
		for i := range got {
			g, r := got[i], ref[i]
			if g.Epoch != r.Epoch || g.Frac != r.Frac || g.N != r.N || g.Class != r.Class {
				t.Fatalf("chunk=%d verdict %d: (epoch=%d frac=%v n=%d) != ref (epoch=%d frac=%v n=%d)",
					chunk, i, g.Epoch, g.Frac, g.N, r.Epoch, r.Frac, r.N)
			}
		}
	}
}

// The mixed-slice contract: items irrelevant to a class are skipped,
// so feeding one combined slice per scope works.
func TestEngineMixedSlice(t *testing.T) {
	mixed := []Evidence{
		{Kind: KindKeep}, {Kind: KindDrop},
		{Kind: KindDelta, Value: 1_050_000},
		{Kind: KindMarkerDelta, Value: 900_000},
		{Kind: KindOtherDelta, Value: 1_000_000},
	}
	e := NewEngine(Config{})
	scope := Scope{Key: "k", Up: 1, Down: 2}
	e.Observe(scope, ClassLoss, mixed)
	e.Observe(scope, ClassDelay, mixed)
	e.EndEpoch(0)
	// Loss detector saw exactly 2 trials, delay exactly 1 delta.
	dLoss := e.dets[detKey{scope: scope, class: ClassLoss}]
	dDelay := e.dets[detKey{scope: scope, class: ClassDelay}]
	if dLoss.items != 2 {
		t.Fatalf("loss items = %d, want 2", dLoss.items)
	}
	if dDelay.items != 1 {
		t.Fatalf("delay items = %d, want 1", dDelay.items)
	}
}

func TestTrajectoryRingBounded(t *testing.T) {
	e := NewEngine(Config{TrajectoryCap: 4})
	scope := Scope{Key: "k", Up: 1, Down: 2}
	for ep := uint64(0); ep < 20; ep++ {
		e.Observe(scope, ClassLoss, makeLossStream(100, 0.01, ep))
		e.EndEpoch(ep)
	}
	d := e.dets[detKey{scope: scope, class: ClassLoss}]
	if len(d.traj) > 4 {
		t.Fatalf("trajectory ring grew to %d, cap 4", len(d.traj))
	}
}

func TestVariantBayesEngine(t *testing.T) {
	e := NewEngine(Config{Variant: VariantBayes})
	scope := Scope{Key: "a->b", Up: 1, Down: 2}
	e.Observe(scope, ClassLoss, makeLossStream(5000, 0.30, 43))
	vs := e.EndEpoch(0)
	if len(vs) != 1 {
		t.Fatalf("Bayes engine: got %d verdicts, want 1", len(vs))
	}
}

func TestConfigWithDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	d := DefaultConfig()
	if c != d {
		t.Fatalf("zero config must fill to defaults: %+v != %+v", c, d)
	}
	c = Config{Alpha: 0.05}.withDefaults()
	if c.Alpha != 0.05 || c.Beta != d.Beta {
		t.Fatalf("partial config must keep set fields: %+v", c)
	}
}
