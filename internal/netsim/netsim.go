// Package netsim simulates the inter-domain forwarding substrate of
// the paper's setup (§2): a linear HOP path like Figure 1's
// S → L → X → N → D, where stub domains S and D contribute one HOP
// each and every transit domain contributes an ingress and an egress
// HOP. Packets traverse inter-domain links (propagation delay, jitter,
// optional loss) and intra-domain crossings (base delay, optional
// congestion via a delaymodel.Queue, optional loss, jitter-induced
// reordering, per-HOP clock skew).
//
// The simulator computes every packet's observation time at every HOP,
// then replays each HOP's observations in arrival order to the
// attached Observer (the VPM collector, a baseline, or nothing for a
// non-deploying domain). Ground truth — per-domain loss counts and
// true per-packet delays — is recorded on the side for the
// experiments' accuracy metrics.
//
// Concurrency: the per-packet forwarding sweep is serial by design —
// loss processes and congestion queues are stateful, so drop and delay
// decisions are only deterministic when consulted in send order, and
// ground truth accumulates in that same sweep without atomics. The
// expensive phases around it run in parallel: packet digests are
// computed by a chunked worker pool, and each HOP's observation replay
// runs in its own goroutine (bounded by a worker pool), delivering that
// HOP's observations in arrival order as batches. HOPs that share an
// Observer instance are grouped into one goroutine, so an observer
// never sees concurrent calls; distinct observers must tolerate running
// concurrently with each other.
package netsim

import (
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"sync"

	"vpm/internal/lossmodel"
	"vpm/internal/packet"
	"vpm/internal/receipt"
	"vpm/internal/stats"
)

// DelaySource yields a per-packet delay for a congested crossing.
// delaymodel.Queue implements it. Arrival times are non-decreasing in
// packet send order but may regress slightly under upstream jitter;
// implementations must tolerate that (delaymodel.Queue does).
type DelaySource interface {
	DelayOf(tNS int64, pktBytes int) int64
}

// FixedDelay is a DelaySource with a constant delay.
type FixedDelay int64

// DelayOf returns the fixed delay.
func (d FixedDelay) DelayOf(int64, int) int64 { return int64(d) }

// Observer receives one HOP's packet observations in arrival order.
// The packet pointer is valid only for the duration of the call
// (NoCopy semantics); digest is the packet's 64-bit ID under the
// deployment seed.
type Observer interface {
	Observe(pkt *packet.Packet, digest uint64, tNS int64)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(pkt *packet.Packet, digest uint64, tNS int64)

// Observe calls f.
func (f ObserverFunc) Observe(pkt *packet.Packet, digest uint64, tNS int64) { f(pkt, digest, tNS) }

// Observation is one packet observation at a HOP: the packet, its
// 64-bit digest under the deployment seed, and the HOP's (possibly
// skewed) observation timestamp. The packet pointer is valid only for
// the duration of the ObserveBatch call that carries it.
type Observation struct {
	Pkt    *packet.Packet
	Digest uint64
	TimeNS int64
}

// BatchObserver is the batched extension of Observer: observers that
// implement it receive observations in arrival-order slices, amortizing
// dispatch and classification over the batch instead of paying one
// virtual call per packet. core.Collector and core.ShardedCollector
// implement it; Deliver is the compatibility shim for observers that
// only implement single-packet Observe.
type BatchObserver interface {
	ObserveBatch(batch []Observation)
}

// Deliver feeds a batch of observations to obs: through ObserveBatch
// when obs implements BatchObserver, one Observe call per packet
// otherwise. The batch must be in arrival order.
func Deliver(obs Observer, batch []Observation) {
	if bo, ok := obs.(BatchObserver); ok {
		bo.ObserveBatch(batch)
		return
	}
	for i := range batch {
		obs.Observe(batch[i].Pkt, batch[i].Digest, batch[i].TimeNS)
	}
}

// DomainSpec describes one domain on the path.
type DomainSpec struct {
	// Name labels the domain ("S", "L", "X", ...).
	Name string
	// Loss is the intra-domain loss process (nil: lossless).
	Loss lossmodel.Process
	// Delay is the intra-domain congestion delay source (nil: only
	// BaseDelayNS applies). Stub domains never use it.
	Delay DelaySource
	// BaseDelayNS is the constant intra-domain transit delay.
	BaseDelayNS int64
	// ReorderJitterNS adds uniform per-packet jitter in
	// [0, ReorderJitterNS] to the crossing, which reorders packets
	// that arrive closer together than the jitter.
	ReorderJitterNS int64
	// IngressSkewNS / EgressSkewNS offset the observation clocks of
	// the domain's HOPs (imperfect NTP sync, §4).
	IngressSkewNS, EgressSkewNS int64
	// Preferential, if non-nil, is consulted for every packet
	// crossing the domain; returning true exempts the packet from the
	// domain's loss and congestion delay. This models the "strategic
	// treatment" attack of §3.2 (only exploitable when the adversary
	// can predict which packets are measured).
	Preferential func(pkt *packet.Packet, digest uint64) bool
}

// LinkSpec describes one inter-domain link.
type LinkSpec struct {
	// DelayNS is the nominal propagation delay.
	DelayNS int64
	// JitterNS adds uniform per-packet jitter in [0, JitterNS].
	JitterNS int64
	// MaxDiffNS is the timestamp-difference bound the two adjacent
	// HOPs advertise for this link (must cover delay + jitter + skew
	// for honest receipts to stay consistent).
	MaxDiffNS int64
	// Loss makes the link itself faulty (nil: healthy).
	Loss lossmodel.Process
}

// Path is a linear inter-domain path.
type Path struct {
	// Domains along the path; the first and last are stubs with a
	// single HOP (egress and ingress respectively).
	Domains []DomainSpec
	// Links connect consecutive domains; len(Links) ==
	// len(Domains)-1.
	Links []LinkSpec
	// Seed drives packet digests and all simulation randomness.
	Seed uint64
}

// Validate checks structural invariants.
func (p *Path) Validate() error {
	if len(p.Domains) < 2 {
		return fmt.Errorf("netsim: need at least 2 domains, have %d", len(p.Domains))
	}
	if len(p.Links) != len(p.Domains)-1 {
		return fmt.Errorf("netsim: %d domains need %d links, have %d",
			len(p.Domains), len(p.Domains)-1, len(p.Links))
	}
	return nil
}

// NumHOPs returns the number of HOPs on the path: one for each stub
// end plus two per transit domain (paper Figure 1: 5 domains → 8
// HOPs).
func (p *Path) NumHOPs() int { return 2 + 2*(len(p.Domains)-2) }

// HOPsOf returns the HOP IDs of domain d (1-based HOP numbering along
// the path, matching the paper's figure). Stub domains return equal
// ingress and egress.
func (p *Path) HOPsOf(d int) (ingress, egress receipt.HOPID) {
	switch {
	case d == 0:
		return 1, 1
	case d == len(p.Domains)-1:
		n := receipt.HOPID(p.NumHOPs())
		return n, n
	default:
		in := receipt.HOPID(2 * d)
		return in, in + 1
	}
}

// DomainTruth is the ground truth recorded for one transit domain.
type DomainTruth struct {
	Name            string
	Ingress, Egress receipt.HOPID
	In, Out         uint64
	DroppedInside   uint64
	TrueDelaysNS    []float64 // egress minus ingress true time per delivered packet
}

// LossRate returns the domain's actual loss rate for this run.
func (d DomainTruth) LossRate() float64 {
	if d.In == 0 {
		return 0
	}
	return float64(d.DroppedInside) / float64(d.In)
}

// Result is the outcome of one simulation run.
type Result struct {
	Sent      int
	Delivered int
	// Domains holds ground truth for every domain (stubs included;
	// stubs never drop or delay).
	Domains []DomainTruth
	// LinkDrops counts packets lost on each inter-domain link.
	LinkDrops []uint64
}

// DomainByName returns the truth record for the named domain.
func (r *Result) DomainByName(name string) (*DomainTruth, bool) {
	for i := range r.Domains {
		if r.Domains[i].Name == name {
			return &r.Domains[i], true
		}
	}
	return nil, false
}

// hopObservation is one (packet, time) event at a HOP.
type hopObservation struct {
	pktIdx int32
	timeNS int64
}

// Run drives pkts (in send order) across the path, delivering each
// HOP's observations in arrival-time order to the corresponding
// observer. observers maps HOP ID → Observer; HOPs without an entry
// are non-deploying (partial deployment, §8). Run is deterministic
// given the path seed.
//
// Distinct observers are called concurrently (one goroutine per
// observer, bounded by a worker pool); each individual observer still
// sees its observations from a single goroutine, in arrival order.
//
// Run is the one-shot form: it derives fresh jitter state from the
// path seed on every call. Continuous operation feeds the path in
// epoch-sized segments through a Runner instead, whose state persists
// across segments so the concatenated stream behaves like one run.
func (p *Path) Run(pkts []packet.Packet, observers map[receipt.HOPID]Observer) (*Result, error) {
	r, err := NewRunner(p)
	if err != nil {
		return nil, err
	}
	return r.Run(pkts, observers)
}

// Runner drives traffic across a path in consecutive segments while
// behaving exactly like one uninterrupted Run over the concatenated
// trace. Two mechanisms make the equivalence hold:
//
//   - All per-path randomness state persists between calls: the jitter
//     RNG streams (created once, from the path seed) and the stateful
//     loss and congestion processes attached to the Path. Per-packet
//     drop/delay decisions depend only on the packet sequence, so
//     segmentation never changes them.
//   - Replay withholding: a packet sent near the end of a segment
//     arrives at downstream HOPs after packets of the next segment
//     have started arriving, so replaying each segment to completion
//     would deliver those observations out of arrival order. RunSegment
//     therefore withholds, per HOP, every observation that could still
//     interleave with a future packet (observation time past the
//     segment horizon plus the HOP's minimum observation delay) and
//     merges it into the next segment's arrival-ordered replay. The
//     delivered stream is identical, observation for observation, to a
//     one-shot run's (TestRunnerSegmentsMatchOneShot) — which is what
//     lets the continuous pipeline's receipts match batch receipts
//     exactly.
type Runner struct {
	p          *Path
	jitterRngs []*stats.RNG
	linkRngs   []*stats.RNG
	rep        *replayer
}

// pendingObs is one withheld observation, self-contained.
type pendingObs struct {
	pkt    packet.Packet
	digest uint64
	timeNS int64
}

// replayer owns the arrival-order replay of per-HOP observation
// streams: the per-HOP minimum observation delays that bound what a
// future packet can still interleave with, and the withheld
// observations carried across segment boundaries. The linear Runner
// and the mesh TopoRunner share it — replay semantics are identical
// whatever graph produced the observations.
type replayer struct {
	// minObsNS is each HOP's minimum observation delay after a
	// packet's send time: propagation + base transit (jitter,
	// congestion and queueing only add) plus the HOP's clock skew.
	minObsNS []int64
	// pending holds each HOP's withheld observations (packet values
	// copied out of the dead segment slice), time-sorted.
	pending [][]pendingObs
}

// newReplayer sizes the replay state for HOP IDs 1..nHops.
func newReplayer(nHops int) *replayer {
	return &replayer{
		minObsNS: make([]int64, nHops+1),
		pending:  make([][]pendingObs, nHops+1),
	}
}

// replay delivers every HOP's deliverable observations in arrival
// order: HOPs replay concurrently (one goroutine per observer group,
// bounded by a worker pool); within a HOP, observations are delivered
// in arrival-order batches through the BatchObserver fast path. HOPs
// that share an Observer instance replay sequentially in one
// goroutine, preserving the serial semantics an aliased observer
// expects. Observations past the horizon (plus the HOP's minimum
// observation delay) are withheld for the next segment's merge.
func (r *replayer) replay(obsPerHop [][]hopObservation, observers map[receipt.HOPID]Observer, pkts []packet.Packet, digests []uint64, horizonNS int64) {
	nHops := len(r.minObsNS) - 1
	var groups []replayGroup
	for hop := 1; hop <= nHops; hop++ {
		obs, ok := observers[receipt.HOPID(hop)]
		if !ok || obs == nil {
			continue
		}
		if gi := findGroup(groups, obs); gi >= 0 {
			groups[gi].hops = append(groups[gi].hops, hop)
		} else {
			groups = append(groups, replayGroup{obs: obs, hops: []int{hop}})
		}
	}
	sem := make(chan struct{}, replayWorkers())
	var wg sync.WaitGroup
	for gi := range groups {
		g := &groups[gi]
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer func() { <-sem; wg.Done() }()
			batch := make([]Observation, 0, ReplayBatchSize)
			for _, hop := range g.hops {
				events := obsPerHop[hop]
				sort.SliceStable(events, func(a, b int) bool { return events[a].timeNS < events[b].timeNS })
				// Everything observable past the cutoff could still
				// interleave with a future packet's observation: hold
				// it back for the next segment's merge. Ties at the
				// cutoff are safe to deliver — a future observation at
				// the same timestamp sorts after them (stable order is
				// insertion order, and future packets insert later).
				cutoff := horizonNS + r.minObsNS[hop]
				pend := r.pending[hop]
				pn := len(pend)
				for pn > 0 && pend[pn-1].timeNS > cutoff {
					pn--
				}
				en := len(events)
				for en > 0 && events[en-1].timeNS > cutoff {
					en--
				}
				// Merge the two time-sorted deliverable runs, pending
				// first on ties (earlier insertion order).
				batch = batch[:0]
				pi, ei := 0, 0
				for pi < pn || ei < en {
					if pi < pn && (ei >= en || pend[pi].timeNS <= events[ei].timeNS) {
						po := &pend[pi]
						batch = append(batch, Observation{Pkt: &po.pkt, Digest: po.digest, TimeNS: po.timeNS})
						pi++
					} else {
						e := events[ei]
						batch = append(batch, Observation{Pkt: &pkts[e.pktIdx], Digest: digests[e.pktIdx], TimeNS: e.timeNS})
						ei++
					}
					if len(batch) == ReplayBatchSize {
						Deliver(g.obs, batch)
						batch = batch[:0]
					}
				}
				if len(batch) > 0 {
					Deliver(g.obs, batch)
					batch = batch[:0]
				}
				// Withheld observations outlive this segment's packet
				// slice: copy them out. The concatenation is NOT sorted
				// — an old pending observation delayed by congestion
				// can carry a later timestamp than a newly withheld one
				// — so the stable sort below is load-bearing: it
				// restores time order while keeping pending entries
				// ahead of new ones on ties (their insertion order).
				rest := pend[:0]
				rest = append(rest, pend[pn:]...)
				for _, e := range events[en:] {
					rest = append(rest, pendingObs{pkt: pkts[e.pktIdx], digest: digests[e.pktIdx], timeNS: e.timeNS})
				}
				sort.SliceStable(rest, func(a, b int) bool { return rest[a].timeNS < rest[b].timeNS })
				r.pending[hop] = rest
			}
		}()
	}
	wg.Wait()
}

// NewRunner validates the path and prepares its persistent simulation
// state.
func NewRunner(p *Path) (*Runner, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(p.Seed ^ 0xabcdef)
	nHops := p.NumHOPs()
	r := &Runner{
		p:          p,
		jitterRngs: make([]*stats.RNG, len(p.Domains)),
		linkRngs:   make([]*stats.RNG, len(p.Links)),
		rep:        newReplayer(nHops),
	}
	for i := range r.jitterRngs {
		r.jitterRngs[i] = rng.Split()
	}
	for i := range r.linkRngs {
		r.linkRngs[i] = rng.Split()
	}
	// Minimum cumulative delay to each HOP, in path order.
	t := int64(0)
	for d := range p.Domains {
		in, eg := p.HOPsOf(d)
		if d > 0 {
			t += p.Links[d-1].DelayNS
		}
		r.rep.minObsNS[in] = t + p.Domains[d].IngressSkewNS
		if eg != in {
			t += p.Domains[d].BaseDelayNS
			r.rep.minObsNS[eg] = t + p.Domains[d].EgressSkewNS
		} else if d == 0 {
			r.rep.minObsNS[eg] = t + p.Domains[d].EgressSkewNS
		}
	}
	return r, nil
}

// Run drives one final (or sole) segment of traffic: every
// observation, including any withheld by earlier RunSegment calls, is
// delivered. Equivalent to RunSegment with an unbounded horizon; call
// with an empty packet slice to flush withheld observations after an
// early stop.
func (r *Runner) Run(pkts []packet.Packet, observers map[receipt.HOPID]Observer) (*Result, error) {
	return r.RunSegment(pkts, observers, int64(1)<<62)
}

// RunSegment drives one segment of traffic (in send order) across the
// path and returns that segment's ground truth. horizonNS promises
// that every future packet is sent at or after it; observations that
// could interleave with such packets are withheld and delivered by the
// next call, keeping each HOP's replay in global arrival order across
// segments.
func (r *Runner) RunSegment(pkts []packet.Packet, observers map[receipt.HOPID]Observer, horizonNS int64) (*Result, error) {
	p := r.p
	nHops := p.NumHOPs()
	jitterRngs, linkRngs := r.jitterRngs, r.linkRngs

	res := &Result{
		Sent:      len(pkts),
		LinkDrops: make([]uint64, len(p.Links)),
	}
	for d := range p.Domains {
		in, eg := p.HOPsOf(d)
		res.Domains = append(res.Domains, DomainTruth{
			Name:    p.Domains[d].Name,
			Ingress: in,
			Egress:  eg,
		})
	}

	digests := make([]uint64, len(pkts))
	parallelChunks(len(pkts), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			digests[i] = pkts[i].Digest(p.Seed)
		}
	})

	obsPerHop := make([][]hopObservation, nHops+1) // 1-based HOP IDs

	record := func(hop receipt.HOPID, pktIdx int, t int64) {
		obsPerHop[hop] = append(obsPerHop[hop], hopObservation{pktIdx: int32(pktIdx), timeNS: t})
	}

	for i := range pkts {
		pkt := &pkts[i]
		t := pkt.SentAt

		// Stub source domain: observed at its egress HOP.
		srcIn, srcEg := p.HOPsOf(0)
		_ = srcIn
		record(srcEg, i, t+p.Domains[0].EgressSkewNS)
		res.Domains[0].In++
		res.Domains[0].Out++

		alive := true
		for d := 1; d < len(p.Domains) && alive; d++ {
			// Inter-domain link d-1 → d.
			link := &p.Links[d-1]
			if link.Loss != nil && link.Loss.Drop() {
				res.LinkDrops[d-1]++
				alive = false
				break
			}
			t += link.DelayNS
			if link.JitterNS > 0 {
				t += int64(linkRngs[d-1].Float64() * float64(link.JitterNS))
			}

			dom := &p.Domains[d]
			truth := &res.Domains[d]
			in, eg := p.HOPsOf(d)
			arrived := t
			record(in, i, arrived+dom.IngressSkewNS)
			truth.In++

			if d == len(p.Domains)-1 {
				// Destination stub: delivered.
				truth.Out++
				res.Delivered++
				break
			}

			// Intra-domain crossing.
			preferred := dom.Preferential != nil && dom.Preferential(pkt, digests[i])
			if !preferred && dom.Loss != nil && dom.Loss.Drop() {
				truth.DroppedInside++
				alive = false
				break
			}
			t += dom.BaseDelayNS
			if !preferred && dom.Delay != nil {
				t += dom.Delay.DelayOf(arrived, pkt.WireLen())
			}
			if dom.ReorderJitterNS > 0 {
				t += int64(jitterRngs[d].Float64() * float64(dom.ReorderJitterNS))
			}
			record(eg, i, t+dom.EgressSkewNS)
			truth.Out++
			truth.TrueDelaysNS = append(truth.TrueDelaysNS, float64(t-arrived))
			_ = eg
		}
	}

	// Replay each HOP's observations in arrival order (see
	// replayer.replay for the concurrency and withholding rules).
	r.rep.replay(obsPerHop, observers, pkts, digests, horizonNS)
	return res, nil
}

// ReplayBatchSize is the observation-slice granularity of the replay
// (and of the throughput measurements, which feed collectors the same
// way): large enough to amortize batch dispatch and keep the sharded
// collector's per-shard runs long, small enough that the per-goroutine
// scratch slice (~100 KB) stays cache-friendly. 4096 measured ~10%
// faster than 2048 on the Fig1 workload.
const ReplayBatchSize = 4096

// replayGroup is the replay work of one observer: all HOPs attached to
// the same Observer instance, replayed sequentially in HOP order.
type replayGroup struct {
	obs  Observer
	hops []int
}

// findGroup returns the index of the group that must also replay obs,
// or -1 for a new group. Comparable observers group by identity.
// Observers of non-comparable dynamic type (e.g. ObserverFunc) cannot
// be tested for identity, so they all share one sequential group —
// conservatively preserving the serial-replay guarantee for a closure
// registered under several HOPs, at the cost of parallelism between
// distinct non-comparable observers.
func findGroup(groups []replayGroup, obs Observer) int {
	comparable := reflect.TypeOf(obs).Comparable()
	for i := range groups {
		gc := reflect.TypeOf(groups[i].obs).Comparable()
		if !comparable && !gc {
			return i
		}
		if comparable && gc && groups[i].obs == obs {
			return i
		}
	}
	return -1
}

// replayWorkers bounds the number of concurrently replaying observer
// groups. At least two even on a single-core box, so the race detector
// exercises the concurrent replay path.
func replayWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 2 {
		return n
	}
	return 2
}

// parallelChunks runs fn over [0,n) split into contiguous chunks, one
// per worker. fn must only touch its own index range.
func parallelChunks(n int, fn func(lo, hi int)) {
	workers := replayWorkers()
	const minChunk = 4096
	if n < 2*minChunk || workers < 2 {
		fn(0, n)
		return
	}
	if n < workers*minChunk {
		workers = n / minChunk
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
