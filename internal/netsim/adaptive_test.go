package netsim

import (
	"testing"
)

// adaptiveBatch builds a deterministic batch spanning spanNS of stream
// time.
func adaptiveBatch(n int, spanNS int64) []Observation {
	pkts := make([]Observation, n)
	step := spanNS / int64(n)
	for i := range pkts {
		pkts[i] = Observation{
			Digest: uint64(i)*0x9e3779b97f4a7c15 + 1,
			TimeNS: int64(i) * step,
		}
	}
	return pkts
}

func TestAdaptiveShaverDecaysTowardFloor(t *testing.T) {
	a := &AdaptiveShaver{
		InitialShaveNS: 1_000_000,
		FloorNS:        100_000,
		HalfLifeNS:     10_000_000,
	}
	if got := a.ShaveAt(0); got != 1_000_000 {
		t.Fatalf("opening shave %d, want the initial magnitude", got)
	}
	if got := a.ShaveAt(10_000_000); got < 540_000 || got > 560_000 {
		t.Fatalf("shave after one half-life %d, want ~550000 (floor + half the excess)", got)
	}
	// Ten half-lives: the excess is gone to within a part per thousand.
	if got := a.ShaveAt(100_000_000); got < 100_000 || got > 101_000 {
		t.Fatalf("asymptotic shave %d, want ~floor %d", got, a.FloorNS)
	}
	// The schedule is anchored at the first query, not at time zero.
	b := &AdaptiveShaver{InitialShaveNS: 1_000_000, HalfLifeNS: 10_000_000}
	if got := b.ShaveAt(500_000_000); got != 1_000_000 {
		t.Fatalf("late-starting stream opens at %d, want full magnitude", got)
	}
}

func TestAdaptiveShaverDutyCycle(t *testing.T) {
	a := &AdaptiveShaver{
		InitialShaveNS: 400_000,
		PeriodNS:       1_000_000,
		Duty:           0.5,
	}
	if got := a.ShaveAt(100_000); got != 400_000 {
		t.Fatalf("on-phase shave %d, want full magnitude", got)
	}
	if got := a.ShaveAt(700_000); got != 0 {
		t.Fatalf("off-phase shave %d, want 0", got)
	}
	if got := a.ShaveAt(1_200_000); got != 400_000 {
		t.Fatalf("second period on-phase shave %d, want full magnitude", got)
	}

	// A batch crossing an on→off edge must come out time-ordered even
	// though the edge un-shaves later observations.
	fresh := &AdaptiveShaver{InitialShaveNS: 400_000, PeriodNS: 1_000_000, Duty: 0.5}
	out := fresh.TamperBatch(1, adaptiveBatch(64, 2_000_000))
	for i := 1; i < len(out); i++ {
		if out[i].TimeNS < out[i-1].TimeNS {
			t.Fatalf("tampered batch unordered at %d: %d after %d", i, out[i].TimeNS, out[i-1].TimeNS)
		}
	}
}

func TestAdaptiveSuppressorDecaysTowardFloor(t *testing.T) {
	a := &AdaptiveSuppressor{
		InitialFraction: 0.5,
		FloorFraction:   0.05,
		HalfLifeNS:      1_000_000,
		Seed:            7,
	}
	if got := a.FractionAt(0); got != 0.5 {
		t.Fatalf("opening fraction %v, want 0.5", got)
	}
	if got := a.FractionAt(1_000_000); got < 0.27 || got > 0.28 {
		t.Fatalf("fraction after one half-life %v, want 0.275", got)
	}
	if got := a.FractionAt(50_000_000); got < 0.05 || got > 0.051 {
		t.Fatalf("asymptotic fraction %v, want ~0.05", got)
	}

	// Early stream drops at roughly the initial rate, late stream at
	// roughly the floor.
	early := a.TamperBatch(1, adaptiveBatch(2000, 10_000)) // ~t=0: negligible decay
	if kept := float64(len(early)) / 2000; kept < 0.45 || kept > 0.55 {
		t.Fatalf("early keep rate %.3f, want ~0.50", kept)
	}
	late := adaptiveBatch(2000, 10_000)
	for i := range late {
		late[i].TimeNS += 100_000_000
	}
	lateOut := a.TamperBatch(1, late)
	if kept := float64(len(lateOut)) / 2000; kept < 0.92 || kept > 0.98 {
		t.Fatalf("late keep rate %.3f, want ~0.95", kept)
	}
}

// TestAdaptiveSuppressorChunkingInvariant: drop decisions are keyed on
// the packet digest and its own timestamp, so feeding the stream in
// any batch chunking keeps exactly the same packets.
func TestAdaptiveSuppressorChunkingInvariant(t *testing.T) {
	mk := func() *AdaptiveSuppressor {
		return &AdaptiveSuppressor{
			InitialFraction: 0.4,
			FloorFraction:   0.1,
			HalfLifeNS:      5_000_000,
			PeriodNS:        3_000_000,
			Duty:            0.7,
			Seed:            42,
		}
	}
	whole := mk().TamperBatch(1, adaptiveBatch(4096, 20_000_000))
	var pieces []Observation
	chunked := mk()
	src := adaptiveBatch(4096, 20_000_000)
	for lo := 0; lo < len(src); lo += 97 {
		hi := lo + 97
		if hi > len(src) {
			hi = len(src)
		}
		pieces = append(pieces, chunked.TamperBatch(1, src[lo:hi])...)
	}
	if len(whole) != len(pieces) {
		t.Fatalf("chunking changed the kept count: %d vs %d", len(whole), len(pieces))
	}
	for i := range whole {
		if whole[i].Digest != pieces[i].Digest {
			t.Fatalf("chunking changed the kept set at %d", i)
		}
	}
}

func TestAdaptiveSuppressorDutyCycleOff(t *testing.T) {
	a := &AdaptiveSuppressor{InitialFraction: 1, PeriodNS: 1_000_000, Duty: 0.25, Seed: 3}
	batch := adaptiveBatch(1000, 1_000_000)
	out := a.TamperBatch(1, batch)
	if len(out) == 0 {
		t.Fatal("duty-cycled suppressor dropped everything")
	}
	// Everything in the on-phase is gone (fraction 1), everything in
	// the off-phase survives.
	for _, o := range out {
		if o.TimeNS < 250_000 {
			t.Fatalf("on-phase packet at %dns survived a fraction-1 suppressor", o.TimeNS)
		}
	}
	if want := 750; len(out) != want {
		t.Fatalf("off-phase survivors %d, want %d", len(out), want)
	}
}
