// Topology generalizes the linear Path to an arbitrary directed domain
// graph — the shape real inter-domain measurement platforms exercise,
// where one backbone link carries traffic for many origin-prefix paths
// and blame must localize despite the sharing.
//
// The model keeps the paper's HOP semantics: a HOP is a hand-off point
// at a domain's interface onto one inter-domain link, so every directed
// link contributes exactly two HOPs — the sending domain's egress onto
// the link and the receiving domain's ingress off it. Two consequences
// do most of the work downstream:
//
//   - Sharing is structural. Every route that traverses link i crosses
//     the same (egress, ingress) HOP pair, so one collector per HOP
//     naturally files receipts for many traffic keys, and the indexed
//     (HOP, key) receipt store needs no changes to hold a mesh.
//   - MaxDiff is unambiguous. A HOP reports about exactly the link it
//     sits on, so the bound it advertises is always its own link's —
//     no reporting-direction case analysis as in the linear PathIDFor.
//
// Multipath (ECMP) is a traffic key with several routes: the runner
// hash-splits the key's packets across them by packet digest, the way
// a router's flow hash would. Routes of one key may share their first
// and last legs (the realistic ECMP shape) — at a HOP where the key's
// routes branch or merge, the stamped PathID records prev/next HOP 0,
// the same "path ends here" convention the linear encoding uses.
package netsim

import (
	"fmt"
	"sync"

	"vpm/internal/hashing"
	"vpm/internal/packet"
	"vpm/internal/receipt"
	"vpm/internal/stats"
)

// TopoLink is one directed inter-domain link of a topology. A
// bidirectional adjacency is two TopoLinks, one per direction, each
// with its own delay/loss/queue model and its own HOP pair.
type TopoLink struct {
	// From and To are domain indices into Topology.Domains.
	From, To int
	// LinkSpec models the link (propagation delay, jitter, advertised
	// MaxDiff, loss process).
	LinkSpec
}

// Route is one HOP sequence a traffic key follows through the
// topology: consecutive directed links from an origin domain to a
// destination domain. Several routes may carry the same Key — that is
// ECMP multipath, hash-split per packet by the runner.
type Route struct {
	// Key is the origin-prefix pair routed along this sequence.
	Key packet.PathKey
	// Links are indices into Topology.Links; Links[i].To must equal
	// Links[i+1].From.
	Links []int
}

// Topology is a directed domain graph with a route table. It reuses
// DomainSpec and LinkSpec wholesale, so every intra-domain model
// (loss, congestion queues, skew, preferential treatment) carries over
// from the linear simulator unchanged — and, like there, the stateful
// loss and queue processes attached to the specs are consulted in
// global packet send order, shared by every route crossing them.
type Topology struct {
	Domains []DomainSpec
	Links   []TopoLink
	Routes  []Route
	// Seed drives packet digests, ECMP hash-splitting and all
	// simulation randomness.
	Seed uint64

	// idx caches the per-key route lists, built once on first routing
	// query (RoutesForKey, PathIDFor). Without it every per-key query
	// scans the whole route table — quadratic once a fleet-scale table
	// holds a million keys. Finish building Routes before querying.
	idxOnce sync.Once
	idx     map[packet.PathKey][]int
}

// keyRoutes returns the indices of the routes carrying key, in
// route-table order, from the lazily built per-key index.
func (t *Topology) keyRoutes(key packet.PathKey) []int {
	t.idxOnce.Do(func() {
		t.idx = make(map[packet.PathKey][]int, len(t.Routes))
		for i := range t.Routes {
			t.idx[t.Routes[i].Key] = append(t.idx[t.Routes[i].Key], i)
		}
	})
	return t.idx[key]
}

// Validate checks structural invariants: link endpoints in range,
// routes made of consecutive in-range links, and no route crossing the
// same link or domain twice (a forwarding loop).
func (t *Topology) Validate() error {
	if len(t.Domains) < 2 {
		return fmt.Errorf("netsim: topology needs at least 2 domains, have %d", len(t.Domains))
	}
	if len(t.Links) == 0 {
		return fmt.Errorf("netsim: topology has no links")
	}
	for i, l := range t.Links {
		if l.From < 0 || l.From >= len(t.Domains) || l.To < 0 || l.To >= len(t.Domains) {
			return fmt.Errorf("netsim: link %d connects out-of-range domains %d->%d", i, l.From, l.To)
		}
		if l.From == l.To {
			return fmt.Errorf("netsim: link %d is a self-loop on domain %d", i, l.From)
		}
	}
	for ri, r := range t.Routes {
		if len(r.Links) == 0 {
			return fmt.Errorf("netsim: route %d has no links", ri)
		}
		seenLink := make(map[int]bool, len(r.Links))
		seenDom := make(map[int]bool, len(r.Links)+1)
		for j, li := range r.Links {
			if li < 0 || li >= len(t.Links) {
				return fmt.Errorf("netsim: route %d references link %d out of range", ri, li)
			}
			if seenLink[li] {
				return fmt.Errorf("netsim: route %d crosses link %d twice", ri, li)
			}
			seenLink[li] = true
			if j == 0 {
				seenDom[t.Links[li].From] = true
			} else if t.Links[r.Links[j-1]].To != t.Links[li].From {
				return fmt.Errorf("netsim: route %d is not contiguous at hop %d (link %d ends at domain %d, link %d starts at %d)",
					ri, j, r.Links[j-1], t.Links[r.Links[j-1]].To, li, t.Links[li].From)
			}
			if seenDom[t.Links[li].To] {
				return fmt.Errorf("netsim: route %d visits domain %d twice", ri, t.Links[li].To)
			}
			seenDom[t.Links[li].To] = true
		}
	}
	return nil
}

// NumHOPs returns the number of HOPs in the topology: two per directed
// link. HOP IDs are 1-based and contiguous.
func (t *Topology) NumHOPs() int { return 2 * len(t.Links) }

// LinkHOPs returns the HOP pair of directed link i: the sending
// domain's egress HOP onto the link and the receiving domain's ingress
// HOP off it.
func (t *Topology) LinkHOPs(i int) (egress, ingress receipt.HOPID) {
	return receipt.HOPID(2*i + 1), receipt.HOPID(2*i + 2)
}

// HOPLink returns the directed link a HOP sits on and whether the HOP
// is the link's egress (sending) side.
func (t *Topology) HOPLink(h receipt.HOPID) (link int, egressSide bool) {
	return int(h-1) / 2, h%2 == 1
}

// HOPDomain returns the index of the domain owning HOP h.
func (t *Topology) HOPDomain(h receipt.HOPID) int {
	li, eg := t.HOPLink(h)
	if eg {
		return t.Links[li].From
	}
	return t.Links[li].To
}

// DomainIndex returns the index of the named domain, or -1.
func (t *Topology) DomainIndex(name string) int {
	for i := range t.Domains {
		if t.Domains[i].Name == name {
			return i
		}
	}
	return -1
}

// RouteHOPs returns route r's HOP sequence in traversal order: the
// origin's egress onto the first link, then each transit domain's
// ingress and egress pair, then the destination's ingress off the last
// link — 2·len(links) HOPs, the same shape as a linear path's.
func (t *Topology) RouteHOPs(r int) []receipt.HOPID {
	rt := &t.Routes[r]
	out := make([]receipt.HOPID, 0, 2*len(rt.Links))
	for _, li := range rt.Links {
		eg, in := t.LinkHOPs(li)
		out = append(out, eg, in)
	}
	return out
}

// RouteDomains returns route r's domain index sequence: origin,
// transits, destination.
func (t *Topology) RouteDomains(r int) []int {
	rt := &t.Routes[r]
	out := make([]int, 0, len(rt.Links)+1)
	out = append(out, t.Links[rt.Links[0]].From)
	for _, li := range rt.Links {
		out = append(out, t.Links[li].To)
	}
	return out
}

// RoutesForKey returns the indices of the routes carrying key, in
// route-table order — one for single-path keys, several for ECMP.
// The first call builds a per-key index, so the route table must be
// complete by then.
func (t *Topology) RoutesForKey(key packet.PathKey) []int {
	return t.keyRoutes(key)
}

// Keys returns the distinct traffic keys in the route table, in
// first-appearance order.
func (t *Topology) Keys() []packet.PathKey {
	seen := make(map[packet.PathKey]bool)
	var out []packet.PathKey
	for i := range t.Routes {
		if !seen[t.Routes[i].Key] {
			seen[t.Routes[i].Key] = true
			out = append(out, t.Routes[i].Key)
		}
	}
	return out
}

// PathIDFor builds the PathID HOP h stamps on its receipts for traffic
// key: the previous and next HOPs along the key's route(s) through h —
// 0 when the path ends there, or when the key's ECMP routes branch or
// merge at h so no single neighbor exists — and the MaxDiff of h's own
// link (an ingress HOP reports about its upstream link, an egress HOP
// about its downstream link; in this numbering both are the HOP's own
// link). Must agree for every route of the key through h, which it
// does by construction: collectors stamp one PathID per (HOP, key).
func (t *Topology) PathIDFor(key packet.PathKey, h receipt.HOPID) receipt.PathID {
	li, _ := t.HOPLink(h)
	id := receipt.PathID{Key: key, MaxDiffNS: t.Links[li].MaxDiffNS}
	// "First occurrence" is tracked explicitly: HOPID 0 is a valid
	// neighbor value ("path ends here"), so using 0 as the unset
	// sentinel would make ambiguity detection depend on route-table
	// order (a route ending at h seen before a route transiting h
	// would let the transit neighbor overwrite the legitimate 0).
	var prev, next receipt.HOPID
	first := true
	prevAmbig, nextAmbig := false, false
	for _, ri := range t.keyRoutes(key) {
		hops := t.RouteHOPs(ri)
		for pos, hh := range hops {
			if hh != h {
				continue
			}
			var p, n receipt.HOPID
			if pos > 0 {
				p = hops[pos-1]
			}
			if pos < len(hops)-1 {
				n = hops[pos+1]
			}
			if first {
				prev, next = p, n
				first = false
				continue
			}
			if prev != p {
				prevAmbig = true
			}
			if next != n {
				nextAmbig = true
			}
		}
	}
	if !prevAmbig {
		id.PrevHOP = prev
	}
	if !nextAmbig {
		id.NextHOP = next
	}
	return id
}

// MaxFanIn returns the largest number of distinct traffic keys sharing
// one directed link — the topology's sharing degree.
func (t *Topology) MaxFanIn() int {
	keysPerLink := make([]map[packet.PathKey]bool, len(t.Links))
	for ri := range t.Routes {
		for _, li := range t.Routes[ri].Links {
			if keysPerLink[li] == nil {
				keysPerLink[li] = make(map[packet.PathKey]bool)
			}
			keysPerLink[li][t.Routes[ri].Key] = true
		}
	}
	max := 0
	for _, m := range keysPerLink {
		if len(m) > max {
			max = len(m)
		}
	}
	return max
}

// SharedLinks returns the indices of links carrying two or more
// distinct traffic keys, in link order.
func (t *Topology) SharedLinks() []int {
	keysPerLink := make([]map[packet.PathKey]bool, len(t.Links))
	for ri := range t.Routes {
		for _, li := range t.Routes[ri].Links {
			if keysPerLink[li] == nil {
				keysPerLink[li] = make(map[packet.PathKey]bool)
			}
			keysPerLink[li][t.Routes[ri].Key] = true
		}
	}
	var out []int
	for li, m := range keysPerLink {
		if len(m) >= 2 {
			out = append(out, li)
		}
	}
	return out
}

// TopoResult is the ground truth of one topology simulation segment.
type TopoResult struct {
	Sent      int
	Delivered int
	// Unrouted counts packets whose classified key had no route (or
	// that matched no prefix at all) — cross-traffic outside the route
	// table crosses no HOP.
	Unrouted int
	// Domains holds per-domain ground truth, indexed like
	// Topology.Domains. A mesh domain owns many HOPs, so the linear
	// Ingress/Egress fields stay zero; the counters aggregate every
	// route crossing the domain.
	Domains []DomainTruth
	// LinkDrops counts packets lost on each directed link, indexed
	// like Topology.Links.
	LinkDrops []uint64
	// RouteDelivered counts delivered packets per route, indexed like
	// Topology.Routes — the ECMP split observed.
	RouteDelivered []int
}

// DomainByName returns the truth record for the named domain.
func (r *TopoResult) DomainByName(name string) (*DomainTruth, bool) {
	for i := range r.Domains {
		if r.Domains[i].Name == name {
			return &r.Domains[i], true
		}
	}
	return nil, false
}

// TopoRunner drives traffic across a topology in consecutive segments,
// exactly like Runner does for a linear path: all randomness and
// queue/loss state persists between calls, and replay withholding
// keeps each HOP's delivered observation stream in global arrival
// order across segment boundaries (the replayer is shared with
// Runner, so the equivalence argument is too).
type TopoRunner struct {
	t     *Topology
	table *packet.Table
	// Per-domain reorder-jitter and per-link jitter RNG streams, split
	// once from the topology seed in domain-then-link order — the same
	// discipline NewRunner uses.
	jitterRngs []*stats.RNG
	linkRngs   []*stats.RNG
	rep        *replayer
	// routesByKey resolves a classified packet to its candidate
	// routes; routeSalt keys the ECMP split so it is uncorrelated with
	// the digest comparisons the sampling layer makes.
	routesByKey map[packet.PathKey][]int
	routeHOPs   [][]receipt.HOPID
	routeDoms   [][]int
	routeSalt   uint64
}

// NewTopoRunner validates the topology and prepares persistent
// simulation state. table classifies packet addresses into traffic
// keys (build it from the trace config, as deployments do).
func NewTopoRunner(t *Topology, table *packet.Table) (*TopoRunner, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if table == nil {
		return nil, fmt.Errorf("netsim: topo runner needs a prefix table")
	}
	rng := stats.NewRNG(t.Seed ^ 0xabcdef)
	r := &TopoRunner{
		t:           t,
		table:       table,
		jitterRngs:  make([]*stats.RNG, len(t.Domains)),
		linkRngs:    make([]*stats.RNG, len(t.Links)),
		rep:         newReplayer(t.NumHOPs()),
		routesByKey: make(map[packet.PathKey][]int),
		routeHOPs:   make([][]receipt.HOPID, len(t.Routes)),
		routeDoms:   make([][]int, len(t.Routes)),
		routeSalt:   t.Seed ^ 0x9e3779b97f4a7c15,
	}
	for i := range r.jitterRngs {
		r.jitterRngs[i] = rng.Split()
	}
	for i := range r.linkRngs {
		r.linkRngs[i] = rng.Split()
	}
	for ri := range t.Routes {
		r.routesByKey[t.Routes[ri].Key] = append(r.routesByKey[t.Routes[ri].Key], ri)
		r.routeHOPs[ri] = t.RouteHOPs(ri)
		r.routeDoms[ri] = t.RouteDomains(ri)
	}
	// Minimum observation delay per HOP: the minimum over all routes
	// through it of the cumulative link propagation + base transit
	// delay (jitter, congestion and queueing only add), plus the HOP's
	// clock skew.
	seen := make([]bool, t.NumHOPs()+1)
	for ri := range t.Routes {
		acc := int64(0)
		doms := r.routeDoms[ri]
		for j, li := range t.Routes[ri].Links {
			eg, in := t.LinkHOPs(li)
			egT := acc + t.Domains[doms[j]].EgressSkewNS
			if !seen[eg] || egT < r.rep.minObsNS[eg] {
				r.rep.minObsNS[eg] = egT
				seen[eg] = true
			}
			acc += t.Links[li].DelayNS
			inT := acc + t.Domains[doms[j+1]].IngressSkewNS
			if !seen[in] || inT < r.rep.minObsNS[in] {
				r.rep.minObsNS[in] = inT
				seen[in] = true
			}
			acc += t.Domains[doms[j+1]].BaseDelayNS
		}
	}
	return r, nil
}

// Run drives one final (or sole) segment: every observation, including
// any withheld by earlier RunSegment calls, is delivered. Call with an
// empty packet slice to flush withheld observations.
func (r *TopoRunner) Run(pkts []packet.Packet, observers map[receipt.HOPID]Observer) (*TopoResult, error) {
	return r.RunSegment(pkts, observers, int64(1)<<62)
}

// RunSegment drives one segment of traffic (in send order) across the
// topology and returns that segment's ground truth. horizonNS promises
// that every future packet is sent at or after it; observations that
// could still interleave with such packets are withheld and delivered
// by the next call (see Runner.RunSegment — the semantics are
// identical, only the forwarding sweep differs).
func (r *TopoRunner) RunSegment(pkts []packet.Packet, observers map[receipt.HOPID]Observer, horizonNS int64) (*TopoResult, error) {
	t := r.t
	res := &TopoResult{
		Sent:           len(pkts),
		LinkDrops:      make([]uint64, len(t.Links)),
		RouteDelivered: make([]int, len(t.Routes)),
	}
	for d := range t.Domains {
		res.Domains = append(res.Domains, DomainTruth{Name: t.Domains[d].Name})
	}

	digests := make([]uint64, len(pkts))
	parallelChunks(len(pkts), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			digests[i] = pkts[i].Digest(t.Seed)
		}
	})

	obsPerHop := make([][]hopObservation, t.NumHOPs()+1) // 1-based HOP IDs
	record := func(hop receipt.HOPID, pktIdx int, tm int64) {
		obsPerHop[hop] = append(obsPerHop[hop], hopObservation{pktIdx: int32(pktIdx), timeNS: tm})
	}

	for i := range pkts {
		pkt := &pkts[i]
		key, ok := r.table.Classify(pkt)
		if !ok {
			res.Unrouted++
			continue
		}
		routes := r.routesByKey[key]
		if len(routes) == 0 {
			res.Unrouted++
			continue
		}
		ri := routes[0]
		if len(routes) > 1 {
			// ECMP: split by a salted digest hash, the flow-hash a
			// router would compute — deterministic per packet, and
			// uncorrelated with the marker/sampling digest comparisons.
			ri = routes[int(hashing.SampleFcn(digests[i], r.routeSalt)%uint64(len(routes)))]
		}
		rt := &t.Routes[ri]
		doms := r.routeDoms[ri]
		tm := pkt.SentAt

		// Origin domain: observed at its egress onto the first link.
		srcEg, _ := t.LinkHOPs(rt.Links[0])
		record(srcEg, i, tm+t.Domains[doms[0]].EgressSkewNS)
		res.Domains[doms[0]].In++
		res.Domains[doms[0]].Out++

		for j, li := range rt.Links {
			link := &t.Links[li]
			if link.Loss != nil && link.Loss.Drop() {
				res.LinkDrops[li]++
				break
			}
			tm += link.DelayNS
			if link.JitterNS > 0 {
				tm += int64(r.linkRngs[li].Float64() * float64(link.JitterNS))
			}

			di := doms[j+1]
			dom := &t.Domains[di]
			truth := &res.Domains[di]
			_, in := t.LinkHOPs(li)
			arrived := tm
			record(in, i, arrived+dom.IngressSkewNS)
			truth.In++

			if j == len(rt.Links)-1 {
				// Destination domain: delivered.
				truth.Out++
				res.Delivered++
				res.RouteDelivered[ri]++
				break
			}

			// Intra-domain crossing to the egress onto the next link.
			preferred := dom.Preferential != nil && dom.Preferential(pkt, digests[i])
			if !preferred && dom.Loss != nil && dom.Loss.Drop() {
				truth.DroppedInside++
				break
			}
			tm += dom.BaseDelayNS
			if !preferred && dom.Delay != nil {
				tm += dom.Delay.DelayOf(arrived, pkt.WireLen())
			}
			if dom.ReorderJitterNS > 0 {
				tm += int64(r.jitterRngs[di].Float64() * float64(dom.ReorderJitterNS))
			}
			eg, _ := t.LinkHOPs(rt.Links[j+1])
			record(eg, i, tm+dom.EgressSkewNS)
			truth.Out++
			truth.TrueDelaysNS = append(truth.TrueDelaysNS, float64(tm-arrived))
		}
	}

	r.rep.replay(obsPerHop, observers, pkts, digests, horizonNS)
	return res, nil
}
