package netsim

import (
	"testing"

	"vpm/internal/delaymodel"
	"vpm/internal/lossmodel"
	"vpm/internal/packet"
	"vpm/internal/receipt"
	"vpm/internal/stats"
	"vpm/internal/trace"
)

func testTrace(t testing.TB, rate float64, durNS int64) []packet.Packet {
	t.Helper()
	pkts, err := trace.Generate(trace.Config{
		Seed:       7,
		DurationNS: durNS,
		Paths:      []trace.PathSpec{trace.DefaultPath(rate)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return pkts
}

// recorder captures one HOP's observations.
type recorder struct {
	ids   []uint64
	times []int64
}

func (r *recorder) Observe(_ *packet.Packet, digest uint64, tNS int64) {
	r.ids = append(r.ids, digest)
	r.times = append(r.times, tNS)
}

func allRecorders(p *Path) (map[receipt.HOPID]Observer, map[receipt.HOPID]*recorder) {
	obs := make(map[receipt.HOPID]Observer)
	recs := make(map[receipt.HOPID]*recorder)
	for h := 1; h <= p.NumHOPs(); h++ {
		r := &recorder{}
		obs[receipt.HOPID(h)] = r
		recs[receipt.HOPID(h)] = r
	}
	return obs, recs
}

func TestValidate(t *testing.T) {
	p := &Path{Domains: []DomainSpec{{Name: "A"}}}
	if err := p.Validate(); err == nil {
		t.Error("single-domain path accepted")
	}
	p = &Path{Domains: []DomainSpec{{Name: "A"}, {Name: "B"}}}
	if err := p.Validate(); err == nil {
		t.Error("missing links accepted")
	}
	if _, err := p.Run(nil, nil); err == nil {
		t.Error("Run on invalid path accepted")
	}
}

func TestFig1Shape(t *testing.T) {
	p := Fig1Path(1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumHOPs() != 8 {
		t.Fatalf("Fig1 has %d HOPs, want 8", p.NumHOPs())
	}
	in, eg := p.HOPsOf(p.DomainIndex("X"))
	if in != 4 || eg != 5 {
		t.Fatalf("X HOPs = %d,%d, want 4,5", in, eg)
	}
	in, eg = p.HOPsOf(0)
	if in != 1 || eg != 1 {
		t.Fatalf("S HOPs = %d,%d", in, eg)
	}
	in, eg = p.HOPsOf(4)
	if in != 8 || eg != 8 {
		t.Fatalf("D HOPs = %d,%d", in, eg)
	}
	if p.DomainIndex("nope") != -1 {
		t.Error("bogus domain found")
	}
}

func TestConservation(t *testing.T) {
	p := Fig1Path(2)
	xi := p.DomainIndex("X")
	p.Domains[xi].Loss = lossmodel.NewBernoulli(0.1, stats.NewRNG(3))
	p.Links[1].Loss = lossmodel.NewBernoulli(0.05, stats.NewRNG(4))
	pkts := testTrace(t, 20000, int64(1e9))
	res, err := p.Run(pkts, nil)
	if err != nil {
		t.Fatal(err)
	}
	var linkDrops uint64
	for _, d := range res.LinkDrops {
		linkDrops += d
	}
	var domainDrops uint64
	for _, d := range res.Domains {
		domainDrops += d.DroppedInside
	}
	if res.Sent != res.Delivered+int(linkDrops)+int(domainDrops) {
		t.Fatalf("conservation: sent %d != delivered %d + link %d + domain %d",
			res.Sent, res.Delivered, linkDrops, domainDrops)
	}
	x, ok := res.DomainByName("X")
	if !ok {
		t.Fatal("X truth missing")
	}
	if lr := x.LossRate(); lr < 0.07 || lr > 0.13 {
		t.Errorf("X loss rate %v, want ~0.1", lr)
	}
	if _, ok := res.DomainByName("nope"); ok {
		t.Error("bogus domain truth found")
	}
}

func TestTrueDelaysRecorded(t *testing.T) {
	p := Fig1Path(3)
	xi := p.DomainIndex("X")
	q, err := delaymodel.New(delaymodel.BurstyUDPScenario(9))
	if err != nil {
		t.Fatal(err)
	}
	p.Domains[xi].Delay = q
	// The Figure 2 experiments drive 100k pkt/s through X; the bursty
	// scenario is calibrated against that foreground load.
	pkts := testTrace(t, 100000, int64(500e6))
	res, err := p.Run(pkts, nil)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := res.DomainByName("X")
	if uint64(len(x.TrueDelaysNS)) != x.Out {
		t.Fatalf("%d delays for %d delivered packets", len(x.TrueDelaysNS), x.Out)
	}
	base := float64(p.Domains[xi].BaseDelayNS)
	congested := 0
	for _, d := range x.TrueDelaysNS {
		if d < base {
			t.Fatalf("delay %v below base %v", d, base)
		}
		if d > base+5e6 {
			congested++
		}
	}
	if congested == 0 {
		t.Error("congestion never pushed delay above base+5ms")
	}
	// The uncongested domain L must show much smaller delays.
	l, _ := res.DomainByName("L")
	lMax := stats.Max(l.TrueDelaysNS)
	if lMax > base+float64(p.Domains[1].ReorderJitterNS)+1000 {
		t.Errorf("uncongested L max delay %v too high", lMax)
	}
}

func TestObserverOrderAndCompleteness(t *testing.T) {
	p := Fig1Path(4)
	obs, recs := allRecorders(p)
	pkts := testTrace(t, 20000, int64(300e6))
	res, err := p.Run(pkts, obs)
	if err != nil {
		t.Fatal(err)
	}
	for h := 1; h <= 8; h++ {
		r := recs[receipt.HOPID(h)]
		for i := 1; i < len(r.times); i++ {
			if r.times[i] < r.times[i-1] {
				t.Fatalf("HOP %d observations out of order at %d", h, i)
			}
		}
	}
	// Lossless path: every HOP sees every packet.
	for h := 1; h <= 8; h++ {
		if got := len(recs[receipt.HOPID(h)].ids); got != res.Sent {
			t.Fatalf("HOP %d saw %d of %d packets on a lossless path", h, got, res.Sent)
		}
	}
}

// TestSharedObserverStaysSequential pins the aliasing contract of the
// parallel replay: when the same Observer instance is attached to
// several HOPs, those HOPs replay sequentially (in HOP order) in one
// goroutine, so a non-thread-safe observer sees exactly what the old
// serial replay delivered.
func TestSharedObserverStaysSequential(t *testing.T) {
	pkts := testTrace(t, 20000, int64(200e6))

	sep4, sep5 := &recorder{}, &recorder{}
	p := Fig1Path(12)
	if _, err := p.Run(pkts, map[receipt.HOPID]Observer{4: sep4, 5: sep5}); err != nil {
		t.Fatal(err)
	}

	shared := &recorder{}
	p = Fig1Path(12)
	if _, err := p.Run(pkts, map[receipt.HOPID]Observer{4: shared, 5: shared}); err != nil {
		t.Fatal(err)
	}

	want := append(append([]uint64{}, sep4.ids...), sep5.ids...)
	if len(shared.ids) != len(want) {
		t.Fatalf("shared observer saw %d observations, want %d", len(shared.ids), len(want))
	}
	for i := range want {
		if shared.ids[i] != want[i] {
			t.Fatalf("shared observer order diverges at %d: HOP replay not sequential", i)
		}
	}
}

// TestBatchObserverDelivery checks that a BatchObserver receives the
// same observations, in the same order, as a plain Observer.
func TestBatchObserverDelivery(t *testing.T) {
	pkts := testTrace(t, 20000, int64(200e6))

	plain := &recorder{}
	p := Fig1Path(13)
	if _, err := p.Run(pkts, map[receipt.HOPID]Observer{4: plain}); err != nil {
		t.Fatal(err)
	}

	batched := &batchRecorder{}
	p = Fig1Path(13)
	if _, err := p.Run(pkts, map[receipt.HOPID]Observer{4: batched}); err != nil {
		t.Fatal(err)
	}

	if batched.singles != 0 {
		t.Fatalf("BatchObserver got %d single-packet calls", batched.singles)
	}
	if batched.batches == 0 {
		t.Fatal("BatchObserver never received a batch")
	}
	if len(batched.ids) != len(plain.ids) {
		t.Fatalf("batched path saw %d observations, plain saw %d", len(batched.ids), len(plain.ids))
	}
	for i := range plain.ids {
		if batched.ids[i] != plain.ids[i] || batched.times[i] != plain.times[i] {
			t.Fatalf("batched delivery diverges from per-packet delivery at %d", i)
		}
	}
}

// batchRecorder records observations through the ObserveBatch fast
// path and counts any stray single-packet deliveries.
type batchRecorder struct {
	recorder
	batches int
	singles int
}

func (r *batchRecorder) Observe(pkt *packet.Packet, digest uint64, tNS int64) {
	r.singles++
	r.recorder.Observe(pkt, digest, tNS)
}

func (r *batchRecorder) ObserveBatch(batch []Observation) {
	r.batches++
	for i := range batch {
		r.recorder.Observe(batch[i].Pkt, batch[i].Digest, batch[i].TimeNS)
	}
}

func TestReorderingOccursWithinJitter(t *testing.T) {
	p := Fig1Path(5)
	// Packets at 100k pkt/s are ~10µs apart; 200µs jitter reorders.
	obs, recs := allRecorders(p)
	pkts := testTrace(t, 100000, int64(200e6))
	if _, err := p.Run(pkts, obs); err != nil {
		t.Fatal(err)
	}
	// Compare arrival order at HOP 1 (send order) and HOP 5 (after
	// domains with jitter).
	order1 := recs[1].ids
	order5 := recs[5].ids
	pos5 := make(map[uint64]int, len(order5))
	for i, id := range order5 {
		pos5[id] = i
	}
	inversions := 0
	prev := -1
	for _, id := range order1 {
		p5, ok := pos5[id]
		if !ok {
			continue
		}
		if p5 < prev {
			inversions++
		}
		if p5 > prev {
			prev = p5
		}
	}
	if inversions == 0 {
		t.Error("no reordering despite jitter >> inter-arrival gap")
	}
}

func TestClockSkewShiftsObservations(t *testing.T) {
	p := Fig1Path(6)
	const skew = 5_000_000
	xi := p.DomainIndex("X")
	p.Domains[xi].IngressSkewNS = skew
	obs, recs := allRecorders(p)
	pkts := testTrace(t, 5000, int64(100e6))
	if _, err := p.Run(pkts, obs); err != nil {
		t.Fatal(err)
	}
	// HOP 4 (X ingress, skewed) must timestamp later than HOP 3 (L
	// egress) by at least skew (link delay only adds).
	r3, r4 := recs[3], recs[4]
	t3 := make(map[uint64]int64, len(r3.ids))
	for i, id := range r3.ids {
		t3[id] = r3.times[i]
	}
	for i, id := range r4.ids {
		d := r4.times[i] - t3[id]
		if d < skew {
			t.Fatalf("skewed HOP timestamp delta %d below skew %d", d, skew)
		}
	}
}

func TestPreferentialBypassesLossAndDelay(t *testing.T) {
	p := Fig1Path(7)
	xi := p.DomainIndex("X")
	p.Domains[xi].Loss = lossmodel.NewBernoulli(0.5, stats.NewRNG(1))
	p.Domains[xi].Preferential = func(*packet.Packet, uint64) bool { return true }
	pkts := testTrace(t, 10000, int64(200e6))
	res, err := p.Run(pkts, nil)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := res.DomainByName("X")
	if x.DroppedInside != 0 {
		t.Fatalf("preferential treatment should bypass loss, dropped %d", x.DroppedInside)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		p := Fig1Path(8)
		p.Domains[2].Loss = lossmodel.NewBernoulli(0.2, stats.NewRNG(5))
		pkts := testTrace(t, 20000, int64(200e6))
		res, err := p.Run(pkts, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Delivered != b.Delivered {
		t.Fatalf("non-deterministic delivery: %d vs %d", a.Delivered, b.Delivered)
	}
	for i := range a.Domains {
		if a.Domains[i].DroppedInside != b.Domains[i].DroppedInside {
			t.Fatalf("non-deterministic drops in %s", a.Domains[i].Name)
		}
	}
}

func TestPathIDFor(t *testing.T) {
	p := Fig1Path(9)
	key := receipt.PathKeyOf(
		packet.MakePrefix(10, 1, 0, 0, 16),
		packet.MakePrefix(172, 16, 0, 0, 16), 0, 0, 0)
	xi := p.DomainIndex("X")
	ingressID := p.PathIDFor(key, xi, true)
	if ingressID.PrevHOP != 3 || ingressID.NextHOP != 5 {
		t.Errorf("X ingress prev/next = %v/%v, want 3/5", ingressID.PrevHOP, ingressID.NextHOP)
	}
	if ingressID.MaxDiffNS != p.Links[1].MaxDiffNS {
		t.Errorf("X ingress MaxDiff = %d", ingressID.MaxDiffNS)
	}
	egressID := p.PathIDFor(key, xi, false)
	if egressID.PrevHOP != 4 || egressID.NextHOP != 6 {
		t.Errorf("X egress prev/next = %v/%v, want 4/6", egressID.PrevHOP, egressID.NextHOP)
	}
	// Path ends: no prev for HOP 1, no next for HOP 8.
	srcID := p.PathIDFor(key, 0, false)
	if srcID.PrevHOP != 0 || srcID.NextHOP != 2 {
		t.Errorf("S egress prev/next = %v/%v", srcID.PrevHOP, srcID.NextHOP)
	}
	dstID := p.PathIDFor(key, 4, true)
	if dstID.PrevHOP != 7 || dstID.NextHOP != 0 {
		t.Errorf("D ingress prev/next = %v/%v", dstID.PrevHOP, dstID.NextHOP)
	}
}

func TestPartialDeploymentRuns(t *testing.T) {
	p := Fig1Path(10)
	// Only HOP 4 observes.
	r := &recorder{}
	obs := map[receipt.HOPID]Observer{4: r}
	pkts := testTrace(t, 5000, int64(100e6))
	if _, err := p.Run(pkts, obs); err != nil {
		t.Fatal(err)
	}
	if len(r.ids) == 0 {
		t.Error("lone observer saw nothing")
	}
}

func BenchmarkRunFig1(b *testing.B) {
	pkts := testTrace(b, 100000, int64(100e6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := Fig1Path(11)
		if _, err := p.Run(pkts, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// lossyCongestedFig1 builds a Fig1 path with stateful loss and
// congestion inside X, so the Runner's state-persistence claim is
// exercised against every kind of simulation state, not just jitter
// RNGs.
func lossyCongestedFig1(t *testing.T, seed uint64) *Path {
	t.Helper()
	p := Fig1Path(seed)
	xi := p.DomainIndex("X")
	ge, err := lossmodel.FromTargetLoss(0.05, 8, stats.NewRNG(seed+13))
	if err != nil {
		t.Fatal(err)
	}
	p.Domains[xi].Loss = ge
	q, err := delaymodel.New(delaymodel.BurstyUDPScenario(seed + 7))
	if err != nil {
		t.Fatal(err)
	}
	p.Domains[xi].Delay = q
	return p
}

// TestRunnerSegmentsMatchOneShot: driving a trace through a Runner in
// epoch-sized segments makes exactly the per-packet drop and delay
// decisions of a single Run — the property continuous operation's
// segment loop relies on. (Only replay delivery grouping differs:
// observations are replayed per segment, so each HOP's multiset of
// observations is compared, not its delivery order.)
func TestRunnerSegmentsMatchOneShot(t *testing.T) {
	pkts := testTrace(t, 20_000, int64(2e8))

	oneObs, oneRecs := allRecorders(Fig1Path(0)) // shape only
	oneShot := lossyCongestedFig1(t, 33)
	resOne, err := oneShot.Run(pkts, oneObs)
	if err != nil {
		t.Fatal(err)
	}

	segPath := lossyCongestedFig1(t, 33)
	runner, err := NewRunner(segPath)
	if err != nil {
		t.Fatal(err)
	}
	segObs, segRecs := allRecorders(segPath)
	var merged []*Result
	const segments = 4
	per := (len(pkts) + segments - 1) / segments
	for lo := 0; lo < len(pkts); lo += per {
		hi := lo + per
		if hi > len(pkts) {
			hi = len(pkts)
		}
		var res *Result
		var err error
		if hi < len(pkts) {
			// The next segment's packets are all sent at or after the
			// first one's send time — the honest horizon.
			res, err = runner.RunSegment(pkts[lo:hi], segObs, pkts[hi].SentAt)
		} else {
			res, err = runner.Run(pkts[lo:hi], segObs)
		}
		if err != nil {
			t.Fatal(err)
		}
		merged = append(merged, res)
	}

	// Ground truth must agree exactly once the segments are summed.
	var sent, delivered int
	drops := make([]uint64, len(oneShot.Links))
	perDomain := make([]DomainTruth, len(resOne.Domains))
	for i := range perDomain {
		perDomain[i].Name = resOne.Domains[i].Name
	}
	for _, res := range merged {
		sent += res.Sent
		delivered += res.Delivered
		for i, d := range res.LinkDrops {
			drops[i] += d
		}
		for i, d := range res.Domains {
			perDomain[i].In += d.In
			perDomain[i].Out += d.Out
			perDomain[i].DroppedInside += d.DroppedInside
			perDomain[i].TrueDelaysNS = append(perDomain[i].TrueDelaysNS, d.TrueDelaysNS...)
		}
	}
	if sent != resOne.Sent || delivered != resOne.Delivered {
		t.Fatalf("sent/delivered differ: segments (%d,%d) one-shot (%d,%d)",
			sent, delivered, resOne.Sent, resOne.Delivered)
	}
	for i := range drops {
		if drops[i] != resOne.LinkDrops[i] {
			t.Fatalf("link %d drops differ: %d vs %d", i, drops[i], resOne.LinkDrops[i])
		}
	}
	for i, d := range perDomain {
		o := resOne.Domains[i]
		if d.In != o.In || d.Out != o.Out || d.DroppedInside != o.DroppedInside {
			t.Fatalf("domain %s truth differs: segments %+v one-shot In=%d Out=%d Dropped=%d",
				d.Name, d, o.In, o.Out, o.DroppedInside)
		}
		if len(d.TrueDelaysNS) != len(o.TrueDelaysNS) {
			t.Fatalf("domain %s delay count differs: %d vs %d", d.Name, len(d.TrueDelaysNS), len(o.TrueDelaysNS))
		}
		for j := range d.TrueDelaysNS {
			if d.TrueDelaysNS[j] != o.TrueDelaysNS[j] {
				t.Fatalf("domain %s delay %d differs", d.Name, j)
			}
		}
	}

	// Every HOP saw the identical observation sequence — same packets,
	// same times, same delivery order. Replay withholding is what makes
	// this exact: boundary-overlap observations are merged into the
	// next segment's arrival-ordered replay instead of being delivered
	// early.
	for hop, one := range oneRecs {
		seg := segRecs[hop]
		if len(one.ids) != len(seg.ids) {
			t.Fatalf("%v observation count differs: %d vs %d", hop, len(one.ids), len(seg.ids))
		}
		for i := range one.ids {
			if one.ids[i] != seg.ids[i] || one.times[i] != seg.times[i] {
				t.Fatalf("%v observation %d differs: one-shot (%x, %d) segmented (%x, %d)",
					hop, i, one.ids[i], one.times[i], seg.ids[i], seg.times[i])
			}
		}
	}
}
