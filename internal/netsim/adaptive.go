package netsim

import (
	"math"

	"vpm/internal/receipt"
	"vpm/internal/stats"
)

// Adaptive adversaries: data-plane liars that tune their attack
// magnitude toward the verifier's noise floor instead of lying at a
// fixed size. A fixed-magnitude lie is the easy case — one epoch of
// evidence buries it. The adaptive strategies model the §2.1 rational
// attacker who knows the published detection thresholds: start loud
// (while the monitoring deployment is presumed cold), decay the
// magnitude exponentially toward a floor chosen to sit at or under the
// per-epoch batch tolerance, and optionally duty-cycle the lie on and
// off so no single epoch accumulates enough weight to cross a batch
// threshold. Per-epoch batch checks then go quiet — while a sequential
// detector, which accumulates log-likelihood across epochs and holds
// its gains at a reflecting floor through the off-phases, still
// crosses.
//
// All schedule decisions are functions of the observation timestamps
// (and, for suppression, the packet digest), never of wall clock or
// call count — the same replayed traffic yields the same corrupted
// receipts on every run, preserving the simulator's determinism
// contract.

// schedOrigin anchors an adversary's schedule at its first observed
// timestamp. factor returns the decayed fraction of the initial excess
// magnitude remaining at stream time t, in [0,1] — or 0 when the duty
// cycle is in an off-phase. halfLifeNS zero disables decay; periodNS
// zero (or duty >= 1) means always on, duty <= 0 with a period means
// always off; duty cycles gate the lie on for the first duty fraction
// of each period.
type schedOrigin struct {
	startNS int64
	started bool
}

func (a *schedOrigin) factor(tNS, halfLifeNS, periodNS int64, duty float64) float64 {
	if !a.started {
		a.startNS, a.started = tNS, true
	}
	el := tNS - a.startNS
	if el < 0 {
		el = 0
	}
	if periodNS > 0 {
		if duty <= 0 {
			return 0
		}
		if duty < 1 && float64(el%periodNS) >= duty*float64(periodNS) {
			return 0
		}
	}
	if halfLifeNS <= 0 {
		return 1
	}
	return math.Exp2(-float64(el) / float64(halfLifeNS))
}

// AdaptiveShaver is the delay-under-reporting lie with a rational
// schedule: the shave starts at InitialShaveNS and decays toward
// FloorNS — pick the floor at or below the per-epoch batch tolerance
// (MaxDiff headroom over the honest delta) and the batch DelayBound
// check goes quiet after the loud opening, while the sequential delay
// detector keeps integrating the floor-sized shift. A duty cycle
// models the on/off attacker probing for detector resets.
type AdaptiveShaver struct {
	// InitialShaveNS is the opening magnitude; FloorNS the asymptote.
	InitialShaveNS int64
	FloorNS        int64
	// HalfLifeNS, PeriodNS, Duty: see schedOrigin.factor.
	HalfLifeNS int64
	PeriodNS   int64
	Duty       float64

	sched schedOrigin
}

// Name implements Adversary.
func (a *AdaptiveShaver) Name() string { return "adaptive-shave" }

// ShaveAt reports the shave magnitude in effect at stream time tNS —
// exported so experiments can log the schedule they simulated.
func (a *AdaptiveShaver) ShaveAt(tNS int64) int64 {
	f := a.sched.factor(tNS, a.HalfLifeNS, a.PeriodNS, a.Duty)
	if f == 0 {
		return 0
	}
	return a.FloorNS + int64(f*float64(a.InitialShaveNS-a.FloorNS))
}

// TamperBatch shifts each observation earlier by the scheduled shave
// at its own timestamp. The shave shrinks monotonically within a
// batch's on-phase, which can only widen gaps, never reorder; an
// off-phase edge inside a batch could locally swap arrivals, so the
// batch is re-sorted when an edge was crossed.
func (a *AdaptiveShaver) TamperBatch(_ receipt.HOPID, batch []Observation) []Observation {
	reorder := false
	var prev int64
	for i := range batch {
		t := batch[i].TimeNS - a.ShaveAt(batch[i].TimeNS)
		if i > 0 && t < prev {
			reorder = true
		}
		batch[i].TimeNS, prev = t, t
	}
	if reorder {
		sortObservations(batch)
	}
	return batch
}

// AdaptiveSuppressor is the observation-suppression lie on the same
// rational schedule: the drop probability decays from InitialFraction
// toward FloorFraction — pick the floor at or under the verifier's
// missing-record tolerance (reorder-noise absorption, §5.3) and the
// per-epoch batch judgment absorbs every epoch's drops as noise, while
// the sequential Bernoulli detector accumulates the drop trials across
// epochs. Drop decisions hash the packet digest, so they are
// per-packet deterministic and independent of batch chunking.
type AdaptiveSuppressor struct {
	InitialFraction float64
	FloorFraction   float64
	// HalfLifeNS, PeriodNS, Duty: see schedOrigin.factor.
	HalfLifeNS int64
	PeriodNS   int64
	Duty       float64
	// Seed drives the per-packet drop decisions.
	Seed uint64

	sched schedOrigin
}

// Name implements Adversary.
func (a *AdaptiveSuppressor) Name() string { return "adaptive-suppress" }

// FractionAt reports the drop probability in effect at stream time
// tNS.
func (a *AdaptiveSuppressor) FractionAt(tNS int64) float64 {
	f := a.sched.factor(tNS, a.HalfLifeNS, a.PeriodNS, a.Duty)
	if f == 0 {
		return 0
	}
	return a.FloorFraction + f*(a.InitialFraction-a.FloorFraction)
}

// TamperBatch filters the batch in place. Each packet's drop decision
// is a digest-keyed coin at the scheduled fraction for its timestamp.
func (a *AdaptiveSuppressor) TamperBatch(_ receipt.HOPID, batch []Observation) []Observation {
	out := batch[:0]
	for _, o := range batch {
		frac := a.FractionAt(o.TimeNS)
		if frac > 0 && stats.NewRNG(o.Digest^a.Seed).Float64() < frac {
			continue
		}
		out = append(out, o)
	}
	return out
}

// sortObservations time-orders a batch in place (insertion sort: the
// batches are nearly sorted — at most one duty-cycle edge out of
// place).
func sortObservations(batch []Observation) {
	for i := 1; i < len(batch); i++ {
		for j := i; j > 0 && batch[j].TimeNS < batch[j-1].TimeNS; j-- {
			batch[j], batch[j-1] = batch[j-1], batch[j]
		}
	}
}
