package netsim

import (
	"fmt"

	"vpm/internal/packet"
	"vpm/internal/stats"
)

// This file builds the named topology families the mesh experiments
// sweep: star (one access link shared by every path), tree (backbone
// links near the root shared by leaf pairs), a Clos-like leaf-spine
// fabric (ECMP multipath across spines), and a random AS-style graph
// (shortest-path routes overlapping organically). Every family uses
// the same healthy defaults as Fig1Path, so experiments perturb
// individual links and domains the same way they do on linear paths.

// TopoKeys returns n distinct origin-prefix traffic keys, numbered the
// way the verify scenario numbers its paths (10.i/16 -> 192.i/16).
func TopoKeys(n int) []packet.PathKey {
	out := make([]packet.PathKey, n)
	for i := range out {
		out[i] = packet.PathKey{
			Src: packet.MakePrefix(10, byte(i), 0, 0, 16),
			Dst: packet.MakePrefix(192, byte(i), 0, 0, 16),
		}
	}
	return out
}

// WideKeys returns n distinct origin-prefix traffic keys drawn from a
// host-grained space (10.a.b.c/32 -> 192.a.b.c/32, up to 2^24 keys).
// TopoKeys wraps after 256 keys — fine for the mesh sweeps it serves,
// fatal for a fleet-scale route table where a duplicated key silently
// becomes an unintended ECMP pair.
func WideKeys(n int) []packet.PathKey {
	out := make([]packet.PathKey, n)
	for i := range out {
		a, b, c := byte(i>>16), byte(i>>8), byte(i)
		out[i] = packet.PathKey{
			Src: packet.MakePrefix(10, a, b, c, 32),
			Dst: packet.MakePrefix(192, a, b, c, 32),
		}
	}
	return out
}

// healthyDomain returns a DomainSpec with the Fig1 healthy defaults.
func healthyDomain(name string) DomainSpec {
	return DomainSpec{
		Name:            name,
		BaseDelayNS:     DefaultBaseDelayNS,
		ReorderJitterNS: DefaultReorderJitterNS,
	}
}

// healthyLink returns the Fig1 healthy link parameters.
func healthyLink() LinkSpec {
	return LinkSpec{
		DelayNS:   DefaultLinkDelayNS,
		JitterNS:  DefaultLinkJitterNS,
		MaxDiffNS: DefaultMaxDiffNS,
	}
}

// addLink appends a directed a→b link and returns its index.
func (t *Topology) addLink(a, b int) int {
	t.Links = append(t.Links, TopoLink{From: a, To: b, LinkSpec: healthyLink()})
	return len(t.Links) - 1
}

// LinearTopology is the linear path expressed as a topology: domains
// S, T1..T(n-2), D chained by directed links, one route carrying key.
// It is the bridge fixture proving the mesh engine agrees with the
// linear Runner (TestTopoLinearEquivalence).
func LinearTopology(seed uint64, nDomains int, key packet.PathKey) *Topology {
	if nDomains < 2 {
		nDomains = 2
	}
	t := &Topology{Seed: seed}
	for i := 0; i < nDomains; i++ {
		name := fmt.Sprintf("T%d", i)
		switch i {
		case 0:
			name = "S"
		case nDomains - 1:
			name = "D"
		}
		t.Domains = append(t.Domains, healthyDomain(name))
	}
	route := Route{Key: key}
	for i := 0; i < nDomains-1; i++ {
		route.Links = append(route.Links, t.addLink(i, i+1))
	}
	t.Routes = append(t.Routes, route)
	return t
}

// StarTopology builds a hub with `leaves` leaf domains. Every key
// originates at leaf 0 and terminates at one of the other leaves
// round-robin, so the leaf0→hub access link is shared by every key
// while the hub→leafJ distribution links are disjoint — the smallest
// topology where a faulty shared link implicates many traffic keys at
// once and honest disjoint links must stay clean.
func StarTopology(seed uint64, leaves int, keys []packet.PathKey) *Topology {
	if leaves < 3 {
		leaves = 3
	}
	t := &Topology{Seed: seed}
	hub := 0
	t.Domains = append(t.Domains, healthyDomain("hub"))
	leafIdx := make([]int, leaves)
	for i := 0; i < leaves; i++ {
		leafIdx[i] = len(t.Domains)
		t.Domains = append(t.Domains, healthyDomain(fmt.Sprintf("leaf%d", i)))
	}
	up := t.addLink(leafIdx[0], hub) // the shared access link
	down := make([]int, leaves)
	for i := 1; i < leaves; i++ {
		down[i] = t.addLink(hub, leafIdx[i])
	}
	for ki, key := range keys {
		dst := 1 + ki%(leaves-1)
		t.Routes = append(t.Routes, Route{Key: key, Links: []int{up, down[dst]}})
	}
	return t
}

// TreeTopology builds a complete fanout-ary tree of the given depth
// (depth 1 = root plus one level of children); the deepest level's
// domains are the leaves. Each key routes from one leaf to the leaf
// halfway around the leaf set, up through the lowest common ancestor —
// for halfway pairs that is the root, so the root's links are the
// shared backbone every pair transits.
func TreeTopology(seed uint64, depth, fanout int, keys []packet.PathKey) *Topology {
	if depth < 1 {
		depth = 1
	}
	if fanout < 2 {
		fanout = 2
	}
	t := &Topology{Seed: seed}
	t.Domains = append(t.Domains, healthyDomain("root"))
	parent := []int{0}
	// level[d] holds the domain indices at depth d.
	var leavesIdx []int
	parentOf := map[int]int{0: -1}
	for d := 1; d <= depth; d++ {
		var level []int
		for _, p := range parent {
			for c := 0; c < fanout; c++ {
				idx := len(t.Domains)
				t.Domains = append(t.Domains, healthyDomain(fmt.Sprintf("n%d_%d", d, len(level))))
				parentOf[idx] = p
				level = append(level, idx)
			}
		}
		parent = level
		leavesIdx = level
	}
	// Bidirectional child↔parent links, created per edge in domain
	// order (map iteration would randomize link numbering between
	// builds, breaking cross-run determinism).
	upLink := make(map[int]int)   // child domain → child→parent link
	downLink := make(map[int]int) // child domain → parent→child link
	for child := 1; child < len(t.Domains); child++ {
		p := parentOf[child]
		upLink[child] = t.addLink(child, p)
		downLink[child] = t.addLink(p, child)
	}
	depthOf := func(n int) int {
		d := 0
		for parentOf[n] >= 0 {
			n = parentOf[n]
			d++
		}
		return d
	}
	routeBetween := func(a, b int) []int {
		// Walk both ends up to the lowest common ancestor.
		var upPath, downPath []int
		x, y := a, b
		for depthOf(x) > depthOf(y) {
			upPath = append(upPath, upLink[x])
			x = parentOf[x]
		}
		for depthOf(y) > depthOf(x) {
			downPath = append(downPath, downLink[y])
			y = parentOf[y]
		}
		for x != y {
			upPath = append(upPath, upLink[x])
			downPath = append(downPath, downLink[y])
			x, y = parentOf[x], parentOf[y]
		}
		for i := len(downPath) - 1; i >= 0; i-- {
			upPath = append(upPath, downPath[i])
		}
		return upPath
	}
	nl := len(leavesIdx)
	for ki, key := range keys {
		a := leavesIdx[ki%nl]
		b := leavesIdx[(ki+nl/2)%nl]
		if a == b {
			b = leavesIdx[(ki+1)%nl]
		}
		t.Routes = append(t.Routes, Route{Key: key, Links: routeBetween(a, b)})
	}
	return t
}

// ClosTopology builds a leaf-spine fabric: `edges` edge domains, each
// with an attached host (stub) domain, and `spines` spine domains
// fully meshed to every edge. Each key routes host→edge→spine→edge→
// host with one route per spine — ECMP multipath, hash-split per
// packet — so the host↔edge access legs are shared by all of a key's
// routes while the spine legs are disjoint.
func ClosTopology(seed uint64, edges, spines int, keys []packet.PathKey) *Topology {
	if edges < 2 {
		edges = 2
	}
	if spines < 1 {
		spines = 1
	}
	t := &Topology{Seed: seed}
	hostIdx := make([]int, edges)
	edgeIdx := make([]int, edges)
	for i := 0; i < edges; i++ {
		edgeIdx[i] = len(t.Domains)
		t.Domains = append(t.Domains, healthyDomain(fmt.Sprintf("edge%d", i)))
		hostIdx[i] = len(t.Domains)
		t.Domains = append(t.Domains, healthyDomain(fmt.Sprintf("host%d", i)))
	}
	spineIdx := make([]int, spines)
	for k := 0; k < spines; k++ {
		spineIdx[k] = len(t.Domains)
		t.Domains = append(t.Domains, healthyDomain(fmt.Sprintf("spine%d", k)))
	}
	hostUp := make([]int, edges)
	hostDown := make([]int, edges)
	for i := 0; i < edges; i++ {
		hostUp[i] = t.addLink(hostIdx[i], edgeIdx[i])
		hostDown[i] = t.addLink(edgeIdx[i], hostIdx[i])
	}
	edgeToSpine := make([][]int, edges)
	spineToEdge := make([][]int, edges)
	for i := 0; i < edges; i++ {
		edgeToSpine[i] = make([]int, spines)
		spineToEdge[i] = make([]int, spines)
		for k := 0; k < spines; k++ {
			edgeToSpine[i][k] = t.addLink(edgeIdx[i], spineIdx[k])
			spineToEdge[i][k] = t.addLink(spineIdx[k], edgeIdx[i])
		}
	}
	for ki, key := range keys {
		a := ki % edges
		b := (a + 1 + ki/edges) % edges
		if b == a {
			b = (a + 1) % edges
		}
		for k := 0; k < spines; k++ {
			t.Routes = append(t.Routes, Route{Key: key, Links: []int{
				hostUp[a], edgeToSpine[a][k], spineToEdge[b][k], hostDown[b],
			}})
		}
	}
	return t
}

// RandomASTopology builds a random AS-style graph: n transit domains
// on a random spanning tree plus `extra` chord links (all
// bidirectional), with each key routed along the BFS shortest path
// between a random domain pair. Overlapping shortest paths produce
// organically shared links, the way inter-domain routes share
// backbone segments.
func RandomASTopology(seed uint64, n, extra int, keys []packet.PathKey) *Topology {
	if n < 3 {
		n = 3
	}
	t := &Topology{Seed: seed}
	for i := 0; i < n; i++ {
		t.Domains = append(t.Domains, healthyDomain(fmt.Sprintf("as%d", i)))
	}
	rng := stats.NewRNG(seed ^ 0x5eed)
	// fwd[a][b] = index of the a→b link, when adjacent.
	fwd := make([]map[int]int, n)
	for i := range fwd {
		fwd[i] = make(map[int]int)
	}
	connect := func(a, b int) {
		if a == b {
			return
		}
		if _, ok := fwd[a][b]; ok {
			return
		}
		fwd[a][b] = t.addLink(a, b)
		fwd[b][a] = t.addLink(b, a)
	}
	// Random spanning tree: attach each new domain to a uniformly
	// chosen earlier one.
	for i := 1; i < n; i++ {
		connect(i, int(rng.Uint64()%uint64(i)))
	}
	for e := 0; e < extra; e++ {
		connect(int(rng.Uint64()%uint64(n)), int(rng.Uint64()%uint64(n)))
	}
	// One full BFS tree per source, memoized: a fleet-scale key list
	// draws millions of endpoint pairs from a few hundred stubs, so
	// per-pair BFS would be quadratic. The tree's parent assignments
	// are exactly what a per-pair BFS stopped at b would have made
	// (deterministic sorted neighbor order, and read-back only touches
	// nodes assigned before b), so the routes are unchanged.
	type bfsTree struct{ prevLink, prevDom []int }
	trees := make(map[int]*bfsTree)
	bfsFrom := func(a int) *bfsTree {
		if tr, ok := trees[a]; ok {
			return tr
		}
		tr := &bfsTree{prevLink: make([]int, n), prevDom: make([]int, n)}
		for i := range tr.prevLink {
			tr.prevLink[i] = -1
			tr.prevDom[i] = -1
		}
		queue := []int{a}
		tr.prevDom[a] = a
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			nbrs := make([]int, 0, len(fwd[x]))
			for y := range fwd[x] {
				nbrs = append(nbrs, y)
			}
			for i := 1; i < len(nbrs); i++ {
				for j := i; j > 0 && nbrs[j] < nbrs[j-1]; j-- {
					nbrs[j], nbrs[j-1] = nbrs[j-1], nbrs[j]
				}
			}
			for _, y := range nbrs {
				if tr.prevDom[y] < 0 {
					tr.prevDom[y] = x
					tr.prevLink[y] = fwd[x][y]
					queue = append(queue, y)
				}
			}
		}
		trees[a] = tr
		return tr
	}
	shortest := func(a, b int) []int {
		tr := bfsFrom(a)
		var rev []int
		for x := b; x != a; x = tr.prevDom[x] {
			rev = append(rev, tr.prevLink[x])
		}
		out := make([]int, 0, len(rev))
		for i := len(rev) - 1; i >= 0; i-- {
			out = append(out, rev[i])
		}
		return out
	}
	// Endpoints are drawn from a small stub subset — like real
	// inter-domain traffic concentrating on a few origin networks — so
	// shortest paths overlap and links end up genuinely shared.
	nStubs := n/3 + 2
	if nStubs > n {
		nStubs = n
	}
	for _, key := range keys {
		a := int(rng.Uint64() % uint64(nStubs))
		b := int(rng.Uint64() % uint64(nStubs))
		for b == a {
			b = int(rng.Uint64() % uint64(nStubs))
		}
		t.Routes = append(t.Routes, Route{Key: key, Links: shortest(a, b)})
	}
	return t
}
