package netsim

import (
	"testing"

	"vpm/internal/hashing"
	"vpm/internal/packet"
	"vpm/internal/receipt"
)

// collectObs records every observation an observer sees.
type collectObs struct {
	ids   []uint64
	times []int64
}

func (c *collectObs) Observe(pkt *packet.Packet, digest uint64, tNS int64) {
	c.ids = append(c.ids, digest)
	c.times = append(c.times, tNS)
}

// wearTestBatch builds a deterministic observation batch.
func wearTestBatch(n int) []Observation {
	pkts := make([]packet.Packet, n)
	batch := make([]Observation, n)
	for i := range batch {
		batch[i] = Observation{Pkt: &pkts[i], Digest: uint64(i)*0x9e3779b97f4a7c15 + 1, TimeNS: int64(i) * 1000}
	}
	return batch
}

func TestWearDelayShaver(t *testing.T) {
	var honest, worn collectObs
	Deliver(&honest, wearTestBatch(64))
	Deliver(Wear(1, &DelayShaver{ShaveNS: 500}, &worn), wearTestBatch(64))
	if len(worn.ids) != len(honest.ids) {
		t.Fatalf("shaver changed the observation count: %d vs %d", len(worn.ids), len(honest.ids))
	}
	for i := range worn.times {
		if worn.times[i] != honest.times[i]-500 {
			t.Fatalf("obs %d: time %d, want %d", i, worn.times[i], honest.times[i]-500)
		}
	}
}

func TestWearSuppressorDeterministic(t *testing.T) {
	runOnce := func() []uint64 {
		var c collectObs
		obs := Wear(1, &Suppressor{Fraction: 0.3, Seed: 42}, &c)
		Deliver(obs, wearTestBatch(512))
		return c.ids
	}
	a, b := runOnce(), runOnce()
	if len(a) == 0 || len(a) == 512 {
		t.Fatalf("suppressor dropped nothing or everything: kept %d of 512", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("suppressor nondeterministic: %d vs %d kept", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("suppressor nondeterministic at %d", i)
		}
	}
	// Roughly the configured fraction survives.
	if kept := float64(len(a)) / 512; kept < 0.6 || kept > 0.8 {
		t.Fatalf("suppressor kept %.2f, want ~0.70", kept)
	}
}

func TestWearMarkerShaverOnlyMarkers(t *testing.T) {
	mu := hashing.ThresholdForRate(0.25) // plenty of "markers" in the test batch
	var honest, worn collectObs
	Deliver(&honest, wearTestBatch(256))
	Deliver(Wear(1, &MarkerShaver{Mu: mu, ShaveNS: 900}, &worn), wearTestBatch(256))
	if len(worn.ids) != len(honest.ids) {
		t.Fatalf("marker shaver changed the count")
	}
	shaved := 0
	for i := range worn.ids {
		if worn.ids[i] != honest.ids[i] {
			t.Fatalf("marker shaver reordered the stream at %d", i)
		}
		want := honest.times[i]
		if hashing.Exceeds(honest.ids[i], mu) {
			want -= 900
			shaved++
		}
		if worn.times[i] != want {
			t.Fatalf("obs %d: time %d, want %d", i, worn.times[i], want)
		}
	}
	if shaved == 0 {
		t.Fatal("no markers in the test batch; mu miscalibrated")
	}
}

// TestWearOnPath: a worn HOP corrupts only its own receipts — the
// neighboring HOPs' observation streams are untouched, which is the
// §2.1 threat-model boundary the whole verification story rests on.
func TestWearOnPath(t *testing.T) {
	path := Fig1Path(3)
	pkts := make([]packet.Packet, 2000)
	for i := range pkts {
		pkts[i] = packet.Packet{
			Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 0, 0, 2},
			SrcPort: uint16(i), DstPort: 80,
			Proto: packet.ProtoUDP, TotalLen: 128,
			SentAt: int64(i) * 10_000,
		}
	}
	run := func(adv Adversary) (map[receipt.HOPID][]int64, *Result) {
		// One comparable observer per HOP: distinct pointers keep each
		// HOP in its own replay group (ObserverFunc closures would all
		// share one group and see every HOP's stream).
		sinks := make(map[receipt.HOPID]*collectObs, 8)
		observers := make(map[receipt.HOPID]Observer, 8)
		for h := receipt.HOPID(1); h <= 8; h++ {
			c := &collectObs{}
			sinks[h] = c
			var obs Observer = c
			if h == 5 && adv != nil {
				obs = Wear(h, adv, obs)
			}
			observers[h] = obs
		}
		res, err := path.Run(pkts, observers)
		if err != nil {
			t.Fatal(err)
		}
		times := make(map[receipt.HOPID][]int64, 8)
		for h, c := range sinks {
			times[h] = c.times
		}
		return times, res
	}
	honest, resH := run(nil)
	worn, resW := run(&DelayShaver{ShaveNS: 1000})
	if resH.Delivered != resW.Delivered {
		t.Fatalf("wearing an adversary changed ground truth: %d vs %d delivered", resH.Delivered, resW.Delivered)
	}
	for h := receipt.HOPID(1); h <= 8; h++ {
		if h == 5 {
			continue
		}
		if len(honest[h]) != len(worn[h]) {
			t.Fatalf("HOP %d stream length changed: %d vs %d", h, len(honest[h]), len(worn[h]))
		}
		for i := range honest[h] {
			if honest[h][i] != worn[h][i] {
				t.Fatalf("HOP %d: honest neighbor's observations changed at %d", h, i)
			}
		}
	}
	for i := range worn[5] {
		if worn[5][i] != honest[5][i]-1000 {
			t.Fatalf("worn HOP 5 time %d: got %d want %d", i, worn[5][i], honest[5][i]-1000)
		}
	}
}
