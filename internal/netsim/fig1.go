package netsim

import (
	"fmt"

	"vpm/internal/receipt"
)

// This file builds the paper's running example (Figure 1): domain S
// sends to domain D via transit domains L, X and N; HOPs are numbered
// 1..8 along the path, with X's ingress and egress at HOPs 4 and 5.

// Fig1 names the domains of the paper's example topology.
var Fig1DomainNames = []string{"S", "L", "X", "N", "D"}

// Default healthy-path parameters.
const (
	// DefaultLinkDelayNS is the inter-domain link propagation delay.
	DefaultLinkDelayNS = 1_000_000 // 1 ms
	// DefaultLinkJitterNS is the per-packet link jitter.
	DefaultLinkJitterNS = 100_000 // 0.1 ms
	// DefaultMaxDiffNS is the advertised timestamp bound per link; it
	// comfortably covers delay + jitter + sane clock skews.
	DefaultMaxDiffNS = 3_000_000 // 3 ms
	// DefaultBaseDelayNS is the uncongested intra-domain transit time.
	DefaultBaseDelayNS = 500_000 // 0.5 ms
	// DefaultReorderJitterNS reorders packets that arrive within a
	// fraction of a millisecond of each other, the paper's empirical
	// reordering regime (§6.3, reference [10]).
	DefaultReorderJitterNS = 200_000 // 0.2 ms
)

// Fig1Path builds the five-domain topology of Figure 1 with healthy
// defaults: no loss anywhere, constant transit delays, mild jitter.
// Experiments then perturb individual domains (e.g. congest X, add
// loss within X) by mutating the returned path before Run.
func Fig1Path(seed uint64) *Path {
	p := &Path{Seed: seed}
	for _, name := range Fig1DomainNames {
		p.Domains = append(p.Domains, DomainSpec{
			Name:            name,
			BaseDelayNS:     DefaultBaseDelayNS,
			ReorderJitterNS: DefaultReorderJitterNS,
		})
	}
	for i := 0; i < len(p.Domains)-1; i++ {
		p.Links = append(p.Links, LinkSpec{
			DelayNS:   DefaultLinkDelayNS,
			JitterNS:  DefaultLinkJitterNS,
			MaxDiffNS: DefaultMaxDiffNS,
		})
	}
	return p
}

// LinearPath builds an nDomains-long path with the same healthy
// defaults as Fig1Path: stub source S, transit domains T1..T(n-2),
// stub destination D. nDomains = 5 reproduces Figure 1's shape (8
// HOPs); larger values scale the verification workload — e.g. 9
// domains give the 16-HOP scenario the verify benchmarks use.
func LinearPath(seed uint64, nDomains int) *Path {
	if nDomains < 2 {
		nDomains = 2
	}
	p := &Path{Seed: seed}
	for i := 0; i < nDomains; i++ {
		name := fmt.Sprintf("T%d", i)
		switch i {
		case 0:
			name = "S"
		case nDomains - 1:
			name = "D"
		}
		p.Domains = append(p.Domains, DomainSpec{
			Name:            name,
			BaseDelayNS:     DefaultBaseDelayNS,
			ReorderJitterNS: DefaultReorderJitterNS,
		})
	}
	for i := 0; i < len(p.Domains)-1; i++ {
		p.Links = append(p.Links, LinkSpec{
			DelayNS:   DefaultLinkDelayNS,
			JitterNS:  DefaultLinkJitterNS,
			MaxDiffNS: DefaultMaxDiffNS,
		})
	}
	return p
}

// DomainIndex returns the index of the named domain, or -1.
func (p *Path) DomainIndex(name string) int {
	for i := range p.Domains {
		if p.Domains[i].Name == name {
			return i
		}
	}
	return -1
}

// LinkBetween returns the index of the link between domain d and d+1
// — equivalently, the link upstream of domain d+1.
func (p *Path) LinkBetween(d int) *LinkSpec { return &p.Links[d] }

// PathIDFor builds the PathID a HOP of domain d would stamp on its
// receipts for traffic with the given origin-prefix key: the previous
// and next HOPs of the reporting HOP along the path (0 when the path
// ends there, as at HOP 1's upstream or HOP 8's downstream in Figure
// 1) and the MaxDiff of the adjacent inter-domain link in the
// reporting direction. ingress selects the domain's ingress HOP
// (true) or egress HOP (false); for stub domains the two coincide.
func (p *Path) PathIDFor(key receipt.PathID, d int, ingress bool) receipt.PathID {
	in, eg := p.HOPsOf(d)
	h := eg
	if ingress {
		h = in
	}
	id := key
	id.PrevHOP = prevHOP(h)
	id.NextHOP = nextHOP(h, p.NumHOPs())
	// Receipts are compared across one inter-domain link; the MaxDiff
	// a HOP advertises is the bound for the link it shares with the
	// neighbor it reports about: the upstream link for an ingress HOP
	// and the downstream link for an egress HOP.
	switch {
	case ingress && d > 0:
		id.MaxDiffNS = p.Links[d-1].MaxDiffNS
	case d < len(p.Links):
		id.MaxDiffNS = p.Links[d].MaxDiffNS
	case d > 0:
		id.MaxDiffNS = p.Links[d-1].MaxDiffNS
	}
	return id
}

func prevHOP(h receipt.HOPID) receipt.HOPID {
	if h <= 1 {
		return 0
	}
	return h - 1
}

func nextHOP(h receipt.HOPID, n int) receipt.HOPID {
	if int(h) >= n {
		return 0
	}
	return h + 1
}
