package netsim

import (
	"vpm/internal/hashing"
	"vpm/internal/packet"
	"vpm/internal/receipt"
	"vpm/internal/stats"
)

// This file is the data-plane half of the Byzantine HOP framework: an
// Adversary a HOP "wears" between the simulator's replay and the HOP's
// collector, rewriting the observation stream the collector sees. The
// paper's threat model (§2.1, §3) allows a domain to manipulate what
// its own HOPs claim to have observed — it cannot touch what *other*
// HOPs observe, which is exactly why every lie here surfaces as an
// inter-domain receipt inconsistency (or provably moves the estimate
// by less than sampling noise). The control-plane half — rewriting
// sealed receipts after collection — lives in core (EpochAdversary);
// dissemination-layer attacks live in dissem (BundleTamper).

// Adversary rewrites the observation stream of one HOP. TamperBatch
// receives each arrival-ordered batch before the HOP's collector and
// returns what the corrupted HOP records instead: entries may be
// dropped, timestamps rewritten, or observations injected. The
// returned batch must be time-ordered (resort after non-uniform time
// edits) and, like the input, is only valid for the duration of the
// call. Batches arrive from a single goroutine per HOP, in arrival
// order, so stateful adversaries need no locking for per-HOP state.
type Adversary interface {
	// Name identifies the adversary in reports and matrix rows.
	Name() string
	// TamperBatch rewrites one observation batch of the given HOP.
	TamperBatch(hop receipt.HOPID, batch []Observation) []Observation
}

// wornObserver feeds every observation through an Adversary before the
// wrapped observer sees it.
type wornObserver struct {
	hop receipt.HOPID
	adv Adversary
	obs Observer
}

// Wear wraps obs so that every observation of hop passes through adv
// first — the HOP now wears the adversary. The wrapper preserves the
// batch fast path (the tampered batch is delivered through
// ObserveBatch when obs supports it) and the single-goroutine replay
// discipline, so determinism is unchanged: the same traffic yields the
// same corrupted receipts on every run.
func Wear(hop receipt.HOPID, adv Adversary, obs Observer) Observer {
	if adv == nil {
		return obs
	}
	return &wornObserver{hop: hop, adv: adv, obs: obs}
}

// Observe funnels a single observation through the batch hook.
func (w *wornObserver) Observe(pkt *packet.Packet, digest uint64, tNS int64) {
	batch := w.adv.TamperBatch(w.hop, []Observation{{Pkt: pkt, Digest: digest, TimeNS: tNS}})
	Deliver(w.obs, batch)
}

// ObserveBatch tampers one arrival-ordered batch and forwards the
// result.
func (w *wornObserver) ObserveBatch(batch []Observation) {
	if out := w.adv.TamperBatch(w.hop, batch); len(out) > 0 {
		Deliver(w.obs, out)
	}
}

// DelayShaver is the delay-under-reporting lie worn at a domain's
// egress HOP: every observation is reported ShaveNS earlier than it
// happened, so the domain's ingress→egress delay looks ShaveNS
// smaller. The uniform shift preserves arrival order — the collector
// cannot tell — but the *inter-domain* link deltas to the downstream
// neighbor grow by the same ShaveNS, blowing past the advertised
// MaxDiff: the lie surfaces as DelayBound violations on the link the
// liar shares with the neighbor it implicated (§4 rule 2).
type DelayShaver struct {
	ShaveNS int64
}

// Name implements Adversary.
func (d *DelayShaver) Name() string { return "delay-underreport" }

// TamperBatch shifts every observation ShaveNS earlier, in place.
func (d *DelayShaver) TamperBatch(_ receipt.HOPID, batch []Observation) []Observation {
	for i := range batch {
		batch[i].TimeNS -= d.ShaveNS
	}
	return batch
}

// Suppressor is the observation-suppression lie, worn at an ingress
// HOP: a deterministic fraction of arriving packets is simply never
// recorded — the domain pretends they did not arrive, shrinking both
// its sample receipts and its aggregate counts. The upstream
// neighbor's egress receipts still claim the deliveries, so the lie
// surfaces on the upstream link as missing-downstream records and
// aggregate count mismatches.
type Suppressor struct {
	// Fraction of observations to suppress, in [0,1].
	Fraction float64
	// Seed drives the deterministic drop decisions.
	Seed uint64

	rng *stats.RNG
}

// Name implements Adversary.
func (s *Suppressor) Name() string { return "suppress-observations" }

// TamperBatch filters the batch in place.
func (s *Suppressor) TamperBatch(_ receipt.HOPID, batch []Observation) []Observation {
	if s.rng == nil {
		s.rng = stats.NewRNG(s.Seed ^ 0x5e1ec7ed)
	}
	out := batch[:0]
	for _, o := range batch {
		if s.rng.Bool(s.Fraction) {
			continue
		}
		out = append(out, o)
	}
	return out
}

// MarkerShaver is the marker-flip gaming lie: the one part of VPM's
// sample set a domain can predict at forwarding time is the marker set
// (µ is public), so a gaming egress HOP reports *markers* ShaveNS
// early while leaving the unpredictable σ-keyed samples honest. The
// per-link deltas of markers stay inside MaxDiff for modest shaves, so
// the §4 checks pass — but the marker vs σ-sample delay split is
// statistically impossible for a uniform hash subsample, and
// Verifier.CheckMarkerBias flags the domain (§5.1 extension).
type MarkerShaver struct {
	// Mu is the system-wide marker threshold (hashing.ThresholdForRate
	// of the marker rate).
	Mu uint64
	// ShaveNS is how much faster markers are claimed to transit.
	ShaveNS int64
}

// Name implements Adversary.
func (m *MarkerShaver) Name() string { return "marker-shave" }

// TamperBatch back-dates marker observation times in place. The
// stream order is left untouched — the gaming control plane rewrites
// the timestamp *field*, not the observation sequence — so the HOP's
// sampling decisions stay synchronized with its honest neighbors'
// (Algorithm 1 keys off marker arrival order) and the only trace of
// the lie is the statistically impossible marker-delay split.
func (m *MarkerShaver) TamperBatch(_ receipt.HOPID, batch []Observation) []Observation {
	for i := range batch {
		if hashing.Exceeds(batch[i].Digest, m.Mu) {
			batch[i].TimeNS -= m.ShaveNS
		}
	}
	return batch
}
