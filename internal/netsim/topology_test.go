package netsim

import (
	"fmt"
	"sync"
	"testing"

	"vpm/internal/lossmodel"
	"vpm/internal/packet"
	"vpm/internal/receipt"
	"vpm/internal/stats"
	"vpm/internal/trace"
)

// obsRecord is one recorded observation for stream comparison.
type obsRecord struct {
	digest uint64
	timeNS int64
}

// obsRecorder collects per-HOP observation streams. One recorder per
// HOP (distinct observer instances), so replay may run concurrently.
type obsRecorder struct {
	mu  sync.Mutex
	got []obsRecord
}

func (r *obsRecorder) Observe(_ *packet.Packet, digest uint64, tNS int64) {
	r.mu.Lock()
	r.got = append(r.got, obsRecord{digest, tNS})
	r.mu.Unlock()
}

// recorders builds one obsRecorder per HOP 1..n.
func recorders(n int) (map[receipt.HOPID]Observer, map[receipt.HOPID]*obsRecorder) {
	obs := make(map[receipt.HOPID]Observer, n)
	rec := make(map[receipt.HOPID]*obsRecorder, n)
	for h := 1; h <= n; h++ {
		r := &obsRecorder{}
		obs[receipt.HOPID(h)] = r
		rec[receipt.HOPID(h)] = r
	}
	return obs, rec
}

func topoTrace(t *testing.T, keys []packet.PathKey, ratePPS float64, durNS int64) (trace.Config, []packet.Packet) {
	t.Helper()
	tc := trace.Config{Seed: 11, DurationNS: durNS}
	for _, k := range keys {
		tc.Paths = append(tc.Paths, trace.PathSpec{
			SrcPrefix:    k.Src,
			DstPrefix:    k.Dst,
			RatePPS:      ratePPS,
			ActiveFlows:  8,
			MeanFlowPkts: 50,
			UDPFraction:  0.2,
		})
	}
	pkts, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	return tc, pkts
}

func TestTopologyValidate(t *testing.T) {
	key := TopoKeys(1)[0]
	good := LinearTopology(1, 4, key)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid topology rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Topology)
	}{
		{"self-loop link", func(tp *Topology) { tp.Links[0].To = tp.Links[0].From }},
		{"out-of-range link", func(tp *Topology) { tp.Links[0].To = 99 }},
		{"empty route", func(tp *Topology) { tp.Routes[0].Links = nil }},
		{"discontiguous route", func(tp *Topology) {
			tp.Routes[0].Links = []int{0, 2}
		}},
		{"repeated link", func(tp *Topology) {
			tp.Routes[0].Links = []int{0, 0}
		}},
	}
	for _, c := range cases {
		tp := LinearTopology(1, 4, key)
		c.mut(tp)
		if err := tp.Validate(); err == nil {
			t.Errorf("%s: expected a validation error", c.name)
		}
	}
}

// TestTopoLinearEquivalence: the mesh engine run over a linear
// topology delivers, HOP for HOP and observation for observation, the
// exact stream the linear Runner delivers for the equivalent Path —
// same HOP numbering, same RNG discipline, same arrival order.
func TestTopoLinearEquivalence(t *testing.T) {
	const nDomains = 5
	key := packet.PathKey{
		Src: packet.MakePrefix(10, 1, 0, 0, 16),
		Dst: packet.MakePrefix(172, 16, 0, 0, 16),
	}
	tc := trace.Config{
		Seed:       7,
		DurationNS: 2e8,
		Paths:      []trace.PathSpec{trace.DefaultPath(50000)},
	}
	pkts, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}

	const seed = 42
	lin := LinearPath(seed, nDomains)
	topo := LinearTopology(seed, nDomains, key)
	// Same stochastic world on both: loss and congestion inside T2,
	// loss on the first link, skew on T1 — separate process instances
	// with identical seeds.
	perturb := func(setDomLoss func(int, lossmodel.Process), setLinkLoss func(int, lossmodel.Process), doms []DomainSpec, links func(int) *LinkSpec) {
		dl, err := lossmodel.FromTargetLoss(0.05, 4, stats.NewRNG(99))
		if err != nil {
			t.Fatal(err)
		}
		setDomLoss(2, dl)
		ll, err := lossmodel.FromTargetLoss(0.02, 4, stats.NewRNG(77))
		if err != nil {
			t.Fatal(err)
		}
		setLinkLoss(0, ll)
		doms[1].IngressSkewNS = 40_000
		doms[1].EgressSkewNS = -25_000
	}
	perturb(func(d int, p lossmodel.Process) { lin.Domains[d].Loss = p },
		func(l int, p lossmodel.Process) { lin.Links[l].Loss = p },
		lin.Domains, func(l int) *LinkSpec { return &lin.Links[l] })
	perturb(func(d int, p lossmodel.Process) { topo.Domains[d].Loss = p },
		func(l int, p lossmodel.Process) { topo.Links[l].Loss = p },
		topo.Domains, func(l int) *LinkSpec { return &topo.Links[l].LinkSpec })

	nHops := lin.NumHOPs()
	if got := topo.NumHOPs(); got != nHops {
		t.Fatalf("HOP count mismatch: linear %d, topo %d", nHops, got)
	}

	linObs, linRec := recorders(nHops)
	linRes, err := lin.Run(append([]packet.Packet(nil), pkts...), linObs)
	if err != nil {
		t.Fatal(err)
	}

	tr, err := NewTopoRunner(topo, tc.Table())
	if err != nil {
		t.Fatal(err)
	}
	topoObs, topoRec := recorders(nHops)
	topoRes, err := tr.Run(append([]packet.Packet(nil), pkts...), topoObs)
	if err != nil {
		t.Fatal(err)
	}

	if linRes.Delivered != topoRes.Delivered {
		t.Fatalf("delivered mismatch: linear %d, topo %d", linRes.Delivered, topoRes.Delivered)
	}
	for h := 1; h <= nHops; h++ {
		a := linRec[receipt.HOPID(h)].got
		b := topoRec[receipt.HOPID(h)].got
		if len(a) != len(b) {
			t.Fatalf("HOP %d: observation count mismatch: linear %d, topo %d", h, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("HOP %d: observation %d differs: linear %+v, topo %+v", h, i, a[i], b[i])
			}
		}
	}
	// Ground truth agrees per domain.
	for d := range lin.Domains {
		lt := linRes.Domains[d]
		tt := topoRes.Domains[d]
		if lt.In != tt.In || lt.Out != tt.Out || lt.DroppedInside != tt.DroppedInside {
			t.Fatalf("domain %s truth mismatch: linear %+v, topo %+v", lt.Name, lt, tt)
		}
	}
}

// TestTopoRunnerSegmentsMatchOneShot: segmented replay over a mesh
// (ECMP Clos fabric with loss and congestion) is observation-identical
// to a one-shot run — the replay-withholding machinery generalizes.
func TestTopoRunnerSegmentsMatchOneShot(t *testing.T) {
	keys := TopoKeys(4)
	build := func() *Topology {
		topo := ClosTopology(9, 2, 2, keys)
		dl, err := lossmodel.FromTargetLoss(0.08, 4, stats.NewRNG(5))
		if err != nil {
			t.Fatal(err)
		}
		topo.Domains[topo.DomainIndex("edge0")].Loss = dl
		ll, err := lossmodel.FromTargetLoss(0.03, 4, stats.NewRNG(6))
		if err != nil {
			t.Fatal(err)
		}
		topo.Links[0].Loss = ll
		return topo
	}
	tc, pkts := topoTrace(t, keys, 20000, 4e8)
	nHops := build().NumHOPs()

	oneTr, err := NewTopoRunner(build(), tc.Table())
	if err != nil {
		t.Fatal(err)
	}
	oneObs, oneRec := recorders(nHops)
	if _, err := oneTr.Run(append([]packet.Packet(nil), pkts...), oneObs); err != nil {
		t.Fatal(err)
	}

	segTr, err := NewTopoRunner(build(), tc.Table())
	if err != nil {
		t.Fatal(err)
	}
	segObs, segRec := recorders(nHops)
	const nSeg = 4
	segLen := int64(4e8) / nSeg
	pcopy := append([]packet.Packet(nil), pkts...)
	start := 0
	for s := 1; s <= nSeg; s++ {
		horizon := int64(s) * segLen
		end := start
		for end < len(pcopy) && pcopy[end].SentAt < horizon {
			end++
		}
		if _, err := segTr.RunSegment(pcopy[start:end], segObs, horizon); err != nil {
			t.Fatal(err)
		}
		start = end
	}
	if _, err := segTr.Run(pcopy[start:], segObs); err != nil {
		t.Fatal(err)
	}

	for h := 1; h <= nHops; h++ {
		a := oneRec[receipt.HOPID(h)].got
		b := segRec[receipt.HOPID(h)].got
		if len(a) != len(b) {
			t.Fatalf("HOP %d: observation count mismatch: one-shot %d, segmented %d", h, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("HOP %d: observation %d differs: one-shot %+v, segmented %+v", h, i, a[i], b[i])
			}
		}
	}
}

// TestStarSharing: the star family shares exactly one access link
// across every key, and the ECMP Clos splits a key's packets across
// every spine.
func TestStarSharing(t *testing.T) {
	keys := TopoKeys(6)
	// Three keys over four leaves: each distribution link carries one
	// key, so the access link is the only shared one — fan-in 3.
	star := StarTopology(3, 4, keys[:3])
	if err := star.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := star.MaxFanIn(); got != 3 {
		t.Fatalf("star fan-in: got %d, want 3", got)
	}
	shared := star.SharedLinks()
	if len(shared) != 1 || shared[0] != 0 {
		t.Fatalf("star shared links: got %v, want [0]", shared)
	}

	clos := ClosTopology(4, 2, 3, keys[:2])
	if err := clos.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(clos.RoutesForKey(keys[0])); got != 3 {
		t.Fatalf("clos ECMP routes per key: got %d, want 3", got)
	}
	tc, pkts := topoTrace(t, keys[:2], 20000, 2e8)
	tr, err := NewTopoRunner(clos, tc.Table())
	if err != nil {
		t.Fatal(err)
	}
	res, err := tr.Run(pkts, map[receipt.HOPID]Observer{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 || res.Unrouted != 0 {
		t.Fatalf("clos run: delivered %d, unrouted %d", res.Delivered, res.Unrouted)
	}
	// Every spine route of key 0 must carry a meaningful share.
	for _, ri := range clos.RoutesForKey(keys[0]) {
		if res.RouteDelivered[ri] == 0 {
			t.Fatalf("ECMP route %d carried no traffic: %v", ri, res.RouteDelivered)
		}
	}
}

// TestPathIDForECMPBranch: at a branch point of a key's ECMP routes
// the stamped PathID records next-HOP 0 (no single successor), while
// unambiguous neighbors stay recorded; MaxDiff is always the HOP's own
// link bound.
func TestPathIDForECMPBranch(t *testing.T) {
	keys := TopoKeys(1)
	clos := ClosTopology(4, 2, 2, keys)
	// Route shape per spine k: hostUp, edge→spine_k, spine_k→edge, hostDown.
	routes := clos.RoutesForKey(keys[0])
	if len(routes) != 2 {
		t.Fatalf("want 2 ECMP routes, got %d", len(routes))
	}
	hops := clos.RouteHOPs(routes[0])
	// hops[1] is the edge's ingress off the shared host link: its
	// predecessor (host egress) is unique, its successor branches.
	id := clos.PathIDFor(keys[0], hops[1])
	if id.PrevHOP != hops[0] {
		t.Fatalf("branch-point PrevHOP: got %v, want %v", id.PrevHOP, hops[0])
	}
	if id.NextHOP != 0 {
		t.Fatalf("branch-point NextHOP: got %v, want 0 (routes diverge)", id.NextHOP)
	}
	li, _ := clos.HOPLink(hops[1])
	if id.MaxDiffNS != clos.Links[li].MaxDiffNS {
		t.Fatalf("MaxDiff: got %d, want the HOP's own link bound %d", id.MaxDiffNS, clos.Links[li].MaxDiffNS)
	}
	// A spine-leg HOP is on one route only: both neighbors unique.
	id2 := clos.PathIDFor(keys[0], hops[2])
	if id2.PrevHOP != hops[1] || id2.NextHOP != hops[3] {
		t.Fatalf("spine-leg PathID neighbors: got prev=%v next=%v, want %v/%v",
			id2.PrevHOP, id2.NextHOP, hops[1], hops[3])
	}
}

// TestPathIDForRouteOrderIndependent is the regression test for the
// 0-as-unset sentinel bug: when one route of a key ends at a HOP
// another route transits, the stamped PathID must record NextHOP 0
// (no single successor) whichever route appears first in the table.
func TestPathIDForRouteOrderIndependent(t *testing.T) {
	key := TopoKeys(1)[0]
	build := func(swap bool) *Topology {
		tp := &Topology{Seed: 1}
		for _, n := range []string{"A", "B", "C"} {
			tp.Domains = append(tp.Domains, healthyDomain(n))
		}
		ab := tp.addLink(0, 1)
		bc := tp.addLink(1, 2)
		short := Route{Key: key, Links: []int{ab}}    // ends at B
		long := Route{Key: key, Links: []int{ab, bc}} // transits B
		if swap {
			tp.Routes = []Route{long, short}
		} else {
			tp.Routes = []Route{short, long}
		}
		return tp
	}
	for _, swap := range []bool{false, true} {
		tp := build(swap)
		if err := tp.Validate(); err != nil {
			t.Fatal(err)
		}
		_, in := tp.LinkHOPs(0) // B's ingress off A→B: shared by both routes
		id := tp.PathIDFor(key, in)
		if id.NextHOP != 0 {
			t.Fatalf("swap=%v: NextHOP %v at a HOP where one route ends and one continues; want 0", swap, id.NextHOP)
		}
		if eg, _ := tp.LinkHOPs(0); id.PrevHOP != eg {
			t.Fatalf("swap=%v: PrevHOP %v, want the unambiguous upstream %v", swap, id.PrevHOP, eg)
		}
	}
}

// TestTreeRouting: tree routes are contiguous, cross the root for
// halfway leaf pairs, and the root links are shared.
func TestTreeRouting(t *testing.T) {
	keys := TopoKeys(4)
	tree := TreeTopology(8, 2, 2, keys)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(tree.SharedLinks()); got == 0 {
		t.Fatal("tree has no shared links; expected shared backbone near the root")
	}
	for ri := range tree.Routes {
		doms := tree.RouteDomains(ri)
		hasRoot := false
		for _, d := range doms {
			if tree.Domains[d].Name == "root" {
				hasRoot = true
			}
		}
		if !hasRoot {
			t.Fatalf("route %d (domains %v) does not cross the root", ri, doms)
		}
	}
}

// TestRandomASTopology: generated graphs validate and route every key.
func TestRandomASTopology(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		keys := TopoKeys(8)
		tp := RandomASTopology(seed, 10, 4, keys)
		if err := tp.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(tp.Routes) != len(keys) {
			t.Fatalf("seed %d: %d routes for %d keys", seed, len(tp.Routes), len(keys))
		}
	}
}

// TestTopoRunnerDeterminism: two identically built runners produce
// identical observation streams (the ECMP split and all RNG streams
// are functions of the seed alone).
func TestTopoRunnerDeterminism(t *testing.T) {
	keys := TopoKeys(3)
	tc, pkts := topoTrace(t, keys, 20000, 1e8)
	run := func() map[receipt.HOPID][]obsRecord {
		topo := StarTopology(6, 4, keys)
		tr, err := NewTopoRunner(topo, tc.Table())
		if err != nil {
			t.Fatal(err)
		}
		obs, rec := recorders(topo.NumHOPs())
		if _, err := tr.Run(append([]packet.Packet(nil), pkts...), obs); err != nil {
			t.Fatal(err)
		}
		out := make(map[receipt.HOPID][]obsRecord)
		for h, r := range rec {
			out[h] = r.got
		}
		return out
	}
	a, b := run(), run()
	for h := range a {
		if fmt.Sprint(a[h]) != fmt.Sprint(b[h]) {
			t.Fatalf("HOP %v: nondeterministic observation stream", h)
		}
	}
}
