package streamagg

import (
	"fmt"
	"math"
	"math/bits"
)

// FastHist bucket layout: values in [0, 64) get exact unit buckets;
// larger values are bucketed by octave (position of the leading bit)
// subdivided linearly into 64 sub-buckets by the next six bits. Every
// bucket's width is at most lo/64, so any representative inside the
// bucket is within a 1/64 relative error of every value it absorbed —
// the proven bound the sketched-vs-exact oracle tests lean on.
const (
	histLinear  = 64 // exact buckets for values in [0, histLinear)
	histSubBits = 6
	histSub     = 1 << histSubBits
	histOctaves = 63 - histSubBits // leading-bit positions 6..62
	histBuckets = histLinear + histOctaves*histSub

	// RelErrBound is the guaranteed relative error of Quantile's
	// bucket bounds: the true value v of any absorbed sample satisfies
	// lo ≤ v ≤ hi with hi-lo ≤ lo/64.
	RelErrBound = 1.0 / 64
)

// FastHist is a fixed-size log-bucketed histogram of non-negative
// int64 values (nanoseconds in this codebase) with bounded relative
// error, in the spirit of the VictoriaMetrics streamaggr quantile
// state: O(1) update, constant memory, mergeable, reusable after
// Reset. Not safe for concurrent use.
type FastHist struct {
	counts [histBuckets]uint32
	n      uint64
	sum    int64
}

// histIdx maps a value to its bucket.
func histIdx(v int64) int {
	if v < histLinear {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1
	sub := int((uint64(v) >> uint(e-histSubBits)) & (histSub - 1))
	return histLinear + (e-histSubBits)*histSub + sub
}

// histBounds returns the value range [lo, hi] a bucket covers.
func histBounds(idx int) (lo, hi int64) {
	if idx < histLinear {
		return int64(idx), int64(idx)
	}
	i := idx - histLinear
	e := uint(histSubBits + i/histSub)
	sub := int64(i % histSub)
	lo = int64(1)<<e + sub<<(e-histSubBits)
	return lo, lo + int64(1)<<(e-histSubBits) - 1
}

// Observe folds one value into the histogram. Negative values clamp to
// zero (timestamps are non-decreasing, so negative interarrivals only
// arise from clock artifacts).
//
//vpm:hotpath
func (h *FastHist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[histIdx(v)]++
	h.n++
	h.sum += v
}

// Count returns the number of values observed.
func (h *FastHist) Count() uint64 { return h.n }

// Sum returns the sum of observed values.
func (h *FastHist) Sum() int64 { return h.sum }

// Reset clears the histogram for reuse.
func (h *FastHist) Reset() {
	h.counts = [histBuckets]uint32{}
	h.n = 0
	h.sum = 0
}

// Merge folds other into h.
func (h *FastHist) Merge(other *FastHist) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
	h.sum += other.sum
}

// Quantile returns the estimated q-quantile (bucket midpoint) together
// with the bucket bounds [lo, hi] that provably bracket the exact
// k-th smallest observed value, k = ceil(q·n) clamped to [1, n]. The
// guarantee is deterministic: hi-lo ≤ lo/64 by construction.
func (h *FastHist) Quantile(q float64) (est float64, lo, hi int64, err error) {
	if h.n == 0 {
		return 0, 0, 0, fmt.Errorf("streamagg: quantile of empty histogram")
	}
	if q < 0 || q > 1 {
		return 0, 0, 0, fmt.Errorf("streamagg: q %v outside [0,1]", q)
	}
	k := uint64(math.Ceil(q * float64(h.n)))
	if k < 1 {
		k = 1
	}
	if k > h.n {
		k = h.n
	}
	var cum uint64
	for i := range h.counts {
		cum += uint64(h.counts[i])
		if cum >= k {
			lo, hi = histBounds(i)
			return float64(lo+hi) / 2, lo, hi, nil
		}
	}
	// Unreachable: cum reaches n ≥ k.
	lo, hi = histBounds(histBuckets - 1)
	return float64(lo+hi) / 2, lo, hi, nil
}
