package streamagg

import (
	"sync"

	"vpm/internal/receipt"
	"vpm/internal/sketch"
)

// PathSketch is the pooled streaming summary state for one
// (HOP, traffic key): the count of sampled packets, an IBLT over the
// full pre-thinning sampled set, and a histogram of sampled
// interarrival times. A collector feeds it every sampled record (via
// the sampler's sink hook) and seals it at epoch close; the verifier
// subtracts two HOPs' IBLTs to recover the exact sampled-set
// difference and compares histogram quantiles within FastHist's
// proven error bound. Not safe for concurrent use.
type PathSketch struct {
	Path receipt.PathID
	// Sampled counts every record folded in — the pre-thinning
	// sampled-set size, which the §4 loss accounting needs even when
	// only a subsample is retained exactly.
	Sampled uint64
	// Interarrival summarizes successive sampled observation gaps.
	Interarrival FastHist

	iblt    *sketch.Sketch
	lastT   int64
	hasLast bool
}

// Observe folds one sampled record into the sketch.
//
//vpm:hotpath
func (ps *PathSketch) Observe(pktID uint64, tNS int64) {
	ps.Sampled++
	if ps.iblt != nil {
		ps.iblt.Add(pktID)
	}
	if ps.hasLast {
		ps.Interarrival.Observe(tNS - ps.lastT)
	}
	ps.lastT = tNS
	ps.hasLast = true
}

// IBLT returns the content sketch (nil when the pool was built with
// zero cells).
func (ps *PathSketch) IBLT() *sketch.Sketch { return ps.iblt }

// Pool hands out reset PathSketches, reusing sealed ones returned via
// Put so steady-state epoch rotation allocates nothing.
type Pool struct {
	cells int
	seed  uint64
	pool  sync.Pool
}

// NewPool builds a pool producing sketches with the given IBLT shape.
// cells = 0 disables the IBLT (count + histogram only).
func NewPool(cells int, seed uint64) *Pool {
	return &Pool{cells: cells, seed: seed}
}

// Get returns a zeroed sketch bound to path.
func (pl *Pool) Get(path receipt.PathID) *PathSketch {
	ps, _ := pl.pool.Get().(*PathSketch)
	if ps == nil {
		ps = &PathSketch{}
		if pl.cells > 0 {
			ib, err := sketch.New(pl.cells, pl.seed)
			if err != nil {
				panic(err) // cells ≥ NumHashes is the pool builder's invariant
			}
			ps.iblt = ib
		}
	}
	ps.Path = path
	return ps
}

// Put returns a sealed sketch to the pool after its consumer is done
// with it, resetting all state.
func (pl *Pool) Put(ps *PathSketch) {
	if ps == nil {
		return
	}
	ps.Path = receipt.PathID{}
	ps.Sampled = 0
	ps.Interarrival.Reset()
	ps.lastT = 0
	ps.hasLast = false
	if ps.iblt != nil {
		ps.iblt.Reset()
	}
	pl.pool.Put(ps)
}
