package streamagg

import (
	"math"
	"sort"
	"testing"

	"vpm/internal/hashing"
	"vpm/internal/packet"
	"vpm/internal/receipt"
	"vpm/internal/sketch"
	"vpm/internal/stats"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{KeepRate: 0, MarkerRate: 0.01},
		{KeepRate: 1.5, MarkerRate: 0.01},
		{KeepRate: 0.1, MarkerRate: 0},
		{KeepRate: 0.1, MarkerRate: 0.01, SketchCells: -1},
		{KeepRate: 0.1, MarkerRate: 0.01, SketchCells: 2},
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	good := Config{KeepRate: 0.1, MarkerRate: 0.001, SketchCells: 128}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestKeepFilterPreservesMarkers proves no marker is ever thinned:
// the verifier's marker-timeline re-derivation depends on every
// retained receipt still containing every marker.
func TestKeepFilterPreservesMarkers(t *testing.T) {
	f := NewKeepFilter(0.01, 0xfeed, 0.001)
	mu := hashing.ThresholdForRate(0.001)
	r := stats.NewRNG(7)
	markers := 0
	for i := 0; i < 2_000_000; i++ {
		id := r.Uint64()
		if hashing.Exceeds(id, mu) {
			markers++
			if !f.Keep(id) {
				t.Fatalf("marker %x thinned", id)
			}
		}
	}
	if markers == 0 {
		t.Fatal("no markers generated")
	}
}

// TestKeepFilterRateAndDeterminism: the filter keeps ~KeepRate of
// non-marker ids and is a pure function (two instances agree).
func TestKeepFilterRateAndDeterminism(t *testing.T) {
	const rate = 0.05
	f := NewKeepFilter(rate, 42, 0.001)
	g := NewKeepFilter(rate, 42, 0.001)
	mu := hashing.ThresholdForRate(0.001)
	r := stats.NewRNG(9)
	kept, total := 0, 0
	for i := 0; i < 1_000_000; i++ {
		id := r.Uint64()
		if hashing.Exceeds(id, mu) {
			continue
		}
		total++
		k := f.Keep(id)
		if k != g.Keep(id) {
			t.Fatal("filter not deterministic")
		}
		if k {
			kept++
		}
	}
	got := float64(kept) / float64(total)
	if math.Abs(got-rate) > 0.005 {
		t.Fatalf("keep rate %v, want ~%v", got, rate)
	}
}

// TestFastHistQuantileBound: for every quantile and distribution
// tried, the exact k-th smallest value lies inside the returned bucket
// bounds and the bounds obey the documented relative-error guarantee.
func TestFastHistQuantileBound(t *testing.T) {
	r := stats.NewRNG(11)
	for trial := 0; trial < 20; trial++ {
		var h FastHist
		n := 1000 + int(r.Uint64()%5000)
		vals := make([]int64, n)
		for i := range vals {
			// Log-uniform values spanning nine decades, plus small ints.
			switch trial % 3 {
			case 0:
				vals[i] = int64(r.Uint64() % 1_000_000_000)
			case 1:
				vals[i] = int64(r.Uint64() % 100)
			default:
				vals[i] = int64(1) << (r.Uint64() % 40)
			}
			h.Observe(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range []float64{0, 0.01, 0.5, 0.9, 0.99, 1} {
			est, lo, hi, err := h.Quantile(q)
			if err != nil {
				t.Fatal(err)
			}
			k := int(math.Ceil(q * float64(n)))
			if k < 1 {
				k = 1
			}
			exact := vals[k-1]
			if exact < lo || exact > hi {
				t.Fatalf("trial %d q=%v: exact %d outside bucket [%d,%d]", trial, q, exact, lo, hi)
			}
			if lo > 0 && float64(hi-lo) > float64(lo)*RelErrBound {
				t.Fatalf("bucket [%d,%d] wider than relative bound", lo, hi)
			}
			if est < float64(lo) || est > float64(hi) {
				t.Fatalf("estimate %v outside own bounds [%d,%d]", est, lo, hi)
			}
		}
	}
}

func TestFastHistMergeAndReset(t *testing.T) {
	var a, b, all FastHist
	r := stats.NewRNG(13)
	for i := 0; i < 10_000; i++ {
		v := int64(r.Uint64() % 1_000_000)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		all.Observe(v)
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Sum() != all.Sum() {
		t.Fatalf("merge: count/sum %d/%d, want %d/%d", a.Count(), a.Sum(), all.Count(), all.Sum())
	}
	ea, _, _, _ := a.Quantile(0.9)
	eall, _, _, _ := all.Quantile(0.9)
	if ea != eall {
		t.Fatalf("merged quantile %v != direct %v", ea, eall)
	}
	a.Reset()
	if a.Count() != 0 || a.Sum() != 0 {
		t.Fatal("reset did not clear")
	}
	if _, _, _, err := a.Quantile(0.5); err == nil {
		t.Fatal("quantile of empty histogram did not error")
	}
}

func testPath() receipt.PathID {
	return receipt.PathKeyOf(
		packet.MakePrefix(10, 1, 0, 0, 16),
		packet.MakePrefix(172, 16, 0, 0, 16),
		4, 5, 2_000_000)
}

// TestPathSketchDifferenceDecodes: two sketches fed overlapping sets
// decode exactly the set difference — the §3.5 loss/injection
// fingerprint survives the pooled streaming path.
func TestPathSketchDifferenceDecodes(t *testing.T) {
	pool := NewPool(256, 99)
	up := pool.Get(testPath())
	down := pool.Get(testPath())
	r := stats.NewRNG(17)
	lost := map[uint64]bool{}
	for i := 0; i < 50_000; i++ {
		id := r.Uint64()
		tNS := int64(i) * 1000
		up.Observe(id, tNS)
		if i%1000 == 7 { // downstream misses a few
			lost[id] = true
			continue
		}
		down.Observe(id, tNS+5000)
	}
	diff, err := up.IBLT().Subtract(down.IBLT())
	if err != nil {
		t.Fatal(err)
	}
	gotLost, injected, ok := diff.Decode()
	if !ok {
		t.Fatal("difference did not decode")
	}
	if len(injected) != 0 {
		t.Fatalf("phantom injected ids: %d", len(injected))
	}
	if len(gotLost) != len(lost) {
		t.Fatalf("decoded %d lost, want %d", len(gotLost), len(lost))
	}
	for _, id := range gotLost {
		if !lost[id] {
			t.Fatalf("decoded id %x was not lost", id)
		}
	}
	if up.Sampled != 50_000 {
		t.Fatalf("upstream sampled %d", up.Sampled)
	}
}

// TestPoolReuse: a sketch returned to the pool comes back zeroed, and
// reuse does not leak prior contents into the next epoch's decode.
func TestPoolReuse(t *testing.T) {
	pool := NewPool(64, 5)
	ps := pool.Get(testPath())
	for i := uint64(1); i <= 100; i++ {
		ps.Observe(i*0x9e3779b9, int64(i))
	}
	pool.Put(ps)
	fresh := pool.Get(testPath())
	if fresh.Sampled != 0 || fresh.Interarrival.Count() != 0 {
		t.Fatal("pooled sketch not reset")
	}
	if fresh.IBLT().Len() != 0 {
		t.Fatal("pooled IBLT not reset")
	}
	empty, err := sketch.New(64, 5)
	if err != nil {
		t.Fatal(err)
	}
	v, err := sketch.Compare(fresh.IBLT(), empty)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Lost) != 0 || len(v.Injected) != 0 || !v.Decoded {
		t.Fatal("reused IBLT retained prior epoch contents")
	}
}
