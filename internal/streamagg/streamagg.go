// Package streamagg is the streaming aggregation backend of the
// collector hot path: constant-size per-path summary state that is
// updated per sampled packet and flushed at epoch close, in place of
// exact per-packet sample retention.
//
// The shape follows the VictoriaMetrics streamaggr idiom — pooled
// fast-histogram quantile state keyed by traffic key, reused across
// flush intervals — adapted to the paper's receipt pipeline:
//
//   - KeepFilter thins the *retained* sample records to a uniform
//     threshold subsample (markers always kept), so the exact-record
//     path shrinks to a configurable fraction while remaining a valid
//     input to the paper's §4 consistency checks: the same
//     deterministic filter runs at every HOP, so all HOPs retain the
//     same subset and receipts still match record-for-record.
//   - FastHist is a log-bucketed histogram with a proven relative
//     error bound on its quantile estimates (≤ 1/64), the streaming
//     substitute for sorting exact samples.
//   - PathSketch bundles the per-(HOP, traffic key) streaming state:
//     the sampled-packet count, an IBLT over the full pre-thinning
//     sampled set (so verifiers can still recover exact set
//     differences, §3.5), and a FastHist of sampled interarrival
//     times. Sketches are pooled and reused across epochs.
//
// The exact path (KeepRate = 1, no sketches) remains the verification
// oracle: property tests in internal/experiments check that sketched
// estimates stay within the internal/quantile order-statistic
// confidence bounds of the exact path.
package streamagg

import (
	"fmt"

	"vpm/internal/hashing"
	"vpm/internal/sketch"
)

// Config parameterizes the streaming backend.
type Config struct {
	// KeepRate is the fraction of sampled (non-marker) records that
	// are retained exactly in receipts; the rest are summarized only
	// by the streaming state. 1 keeps everything (the exact oracle).
	KeepRate float64
	// Salt keys the thinning hash. It must be a system-wide constant:
	// every HOP must make the same keep decision for a given packet
	// or receipts stop matching record-for-record.
	Salt uint64
	// MarkerRate is the system-wide marker frequency (the sampling
	// config's MarkerRate); the filter never thins markers, because
	// the verifier re-derives marker timelines from retained records.
	MarkerRate float64
	// SketchCells sizes each path's IBLT. Size for the expected
	// per-epoch set *difference* between HOPs, not the set itself.
	SketchCells int
	// SketchSeed seeds the IBLT hashing (a deployment constant).
	SketchSeed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.KeepRate <= 0 || c.KeepRate > 1 {
		return fmt.Errorf("streamagg: keep rate %v outside (0,1]", c.KeepRate)
	}
	if c.MarkerRate <= 0 || c.MarkerRate > 1 {
		return fmt.Errorf("streamagg: marker rate %v outside (0,1]", c.MarkerRate)
	}
	if c.SketchCells < 0 {
		return fmt.Errorf("streamagg: negative sketch cells %d", c.SketchCells)
	}
	if c.SketchCells > 0 && c.SketchCells < sketch.NumHashes {
		return fmt.Errorf("streamagg: sketch needs at least %d cells, got %d", sketch.NumHashes, c.SketchCells)
	}
	return nil
}

// KeepFilter decides which sampled records are retained exactly. The
// decision is a pure function of the packet digest and system-wide
// constants, so every HOP retains the same subset (the §5.2 property
// that makes thinned receipts directly comparable), and the retained
// set is a uniform subsample of the sampled set — the thinning hash is
// independent of the marker-keyed sampling hash — so order-statistic
// quantile bounds computed on retained records remain valid for the
// sampled population.
type KeepFilter struct {
	mu    uint64 // marker threshold µ: markers are always kept
	theta uint64 // thinning threshold
	salt  uint64
}

// NewKeepFilter builds the filter retaining ~keepRate of sampled
// records (markers always retained).
func NewKeepFilter(keepRate float64, salt uint64, markerRate float64) KeepFilter {
	return KeepFilter{
		mu:    hashing.ThresholdForRate(markerRate),
		theta: hashing.ThresholdForRate(keepRate),
		salt:  salt,
	}
}

// Keep reports whether a sampled packet's record is retained exactly.
func (f KeepFilter) Keep(pktID uint64) bool {
	return hashing.Exceeds(pktID, f.mu) || hashing.Exceeds(hashing.Mix64(pktID^f.salt), f.theta)
}
