package baseline

import (
	"vpm/internal/hashing"
	"vpm/internal/packet"
	"vpm/internal/receipt"
	"vpm/internal/stats"
)

// TrajectorySampling is one HOP's §3.2 "Trajectory Sampling ++"
// monitor: a packet is sampled iff its digest exceeds a threshold —
// decidable the instant the packet is observed, which is precisely the
// protocol's flaw: a domain can recognize measured packets while they
// are still in its queues and treat them preferentially.
type TrajectorySampling struct {
	threshold uint64
	Records   []StrawmanRecord
	observed  uint64
}

// NewTrajectorySampling builds a monitor sampling at the given rate.
func NewTrajectorySampling(rate float64) *TrajectorySampling {
	return &TrajectorySampling{threshold: hashing.ThresholdForRate(rate)}
}

// Sampled reports whether a digest is sampled — the predicate an
// adversarial domain evaluates at forwarding time to bias its
// treatment (wire it into netsim.DomainSpec.Preferential).
func (t *TrajectorySampling) Sampled(digest uint64) bool {
	return hashing.Exceeds(digest, t.threshold)
}

// Observe implements netsim.Observer.
func (t *TrajectorySampling) Observe(_ *packet.Packet, digest uint64, tNS int64) {
	t.observed++
	if t.Sampled(digest) {
		t.Records = append(t.Records, StrawmanRecord{PktID: digest, TimeNS: tNS})
	}
}

// Observed returns the total packets seen.
func (t *TrajectorySampling) Observed() uint64 { return t.observed }

// ReceiptBytes returns the reporting cost.
func (t *TrajectorySampling) ReceiptBytes() int64 {
	return int64(len(t.Records)) * receipt.SampleRecordBytes
}

// TSPPEstimate is the performance estimate a TS++ verifier computes
// for a domain from its two monitors' receipts.
type TSPPEstimate struct {
	// SampledIn / SampledOut are the matched sample populations.
	SampledIn, SampledOut int
	// LossRate is the estimated loss (1 - out/in over samples), with
	// a Wilson confidence interval.
	LossRate       float64
	LossLo, LossHi float64
	// DelaysNS are the per-sampled-packet delays, from which the
	// verifier estimates quantiles (see internal/quantile).
	DelaysNS []float64
}

// TSPPCompare estimates loss and delay between two TS++ monitors from
// their sampled records (§3.2's computability property: both loss and
// delay quantiles are estimable — it is verifiability that fails).
func TSPPCompare(up, down *TrajectorySampling, confidence float64) TSPPEstimate {
	downTime := make(map[uint64]int64, len(down.Records))
	for _, r := range down.Records {
		downTime[r.PktID] = r.TimeNS
	}
	est := TSPPEstimate{SampledIn: len(up.Records)}
	for _, r := range up.Records {
		td, ok := downTime[r.PktID]
		if !ok {
			continue
		}
		est.SampledOut++
		est.DelaysNS = append(est.DelaysNS, float64(td-r.TimeNS))
	}
	if est.SampledIn > 0 {
		est.LossRate = 1 - float64(est.SampledOut)/float64(est.SampledIn)
		lostLo, lostHi := stats.WilsonInterval(est.SampledIn-est.SampledOut, est.SampledIn, confidence)
		est.LossLo, est.LossHi = lostLo, lostHi
	}
	return est
}
