package baseline

import (
	"vpm/internal/hashing"
	"vpm/internal/packet"
)

// DAAggregate is one §3.3 "Difference Aggregator ++" aggregate record:
// a packet count and a timestamp sum (the Lossy Difference Aggregator
// state), identified by the digests of its first and last packets.
// There is no AggTrans window — that is VPM's addition.
type DAAggregate struct {
	First, Last uint64
	PktCnt      uint64
	TimeSumNS   int64
}

// DiffAggregator is one HOP's §3.3 monitor: hash-selected cutting
// points partition the stream into aggregates carrying counts and
// timestamp sums. It implements netsim.Observer.
type DiffAggregator struct {
	threshold uint64
	open      DAAggregate
	hasOpen   bool
	Aggs      []DAAggregate
}

// NewDiffAggregator builds a monitor cutting at the given rate.
func NewDiffAggregator(cutRate float64) *DiffAggregator {
	return &DiffAggregator{threshold: hashing.ThresholdForRate(cutRate)}
}

// Observe implements netsim.Observer.
func (d *DiffAggregator) Observe(_ *packet.Packet, digest uint64, tNS int64) {
	if hashing.Exceeds(digest, d.threshold) {
		if d.hasOpen {
			d.Aggs = append(d.Aggs, d.open)
		}
		d.open = DAAggregate{First: digest}
		d.hasOpen = true
	} else if !d.hasOpen {
		d.open = DAAggregate{First: digest}
		d.hasOpen = true
	}
	d.open.Last = digest
	d.open.PktCnt++
	d.open.TimeSumNS += tNS
}

// Flush closes the open aggregate.
func (d *DiffAggregator) Flush() {
	if d.hasOpen {
		d.Aggs = append(d.Aggs, d.open)
		d.hasOpen = false
		d.open = DAAggregate{}
	}
}

// DAPPEstimate is what a DA++ verifier can compute: exact loss over
// aligned aggregates and mean delay over loss-free aligned aggregates.
// Delay quantiles are NOT computable from aggregate sums — the §3.3
// computability failure.
type DAPPEstimate struct {
	// AlignedPairs is how many aggregates matched one-to-one by
	// first-packet ID; Misaligned counts upstream aggregates that
	// found no match (reordering or loss of cutting points).
	AlignedPairs, Misaligned int
	// In and Lost are summed over aligned pairs only.
	In, Lost int64
	// MeanDelayNS is the average delay over aligned, loss-free pairs
	// ((sumDown - sumUp) / count); NaN-free: zero when no such pair.
	MeanDelayNS float64
	// LossFreePairs is the denominator population for MeanDelayNS.
	LossFreePairs int
}

// DAPPCompare aligns two monitors' aggregates by first-packet digest
// and computes what DA++ can: per-aggregate loss and average delay.
// Aggregates whose boundaries disagree (reordered or lost cutting
// points) are unusable and counted as Misaligned — the fragility VPM's
// AggTrans patch-up removes.
func DAPPCompare(up, down *DiffAggregator) DAPPEstimate {
	byFirst := make(map[uint64]DAAggregate, len(down.Aggs))
	for _, a := range down.Aggs {
		byFirst[a.First] = a
	}
	var est DAPPEstimate
	var delaySum float64
	for _, ua := range up.Aggs {
		da, ok := byFirst[ua.First]
		if !ok || da.Last != ua.Last {
			// Boundary mismatch: cannot compare counts meaningfully.
			est.Misaligned++
			continue
		}
		est.AlignedPairs++
		est.In += int64(ua.PktCnt)
		lost := int64(ua.PktCnt) - int64(da.PktCnt)
		est.Lost += lost
		if lost == 0 && ua.PktCnt > 0 {
			est.LossFreePairs++
			delaySum += float64(da.TimeSumNS-ua.TimeSumNS) / float64(ua.PktCnt)
		}
	}
	if est.LossFreePairs > 0 {
		est.MeanDelayNS = delaySum / float64(est.LossFreePairs)
	}
	return est
}

// LossRate returns the loss rate over aligned aggregates.
func (e DAPPEstimate) LossRate() float64 {
	if e.In == 0 {
		return 0
	}
	return float64(e.Lost) / float64(e.In)
}

// UsableFraction is the fraction of upstream aggregates that survived
// alignment.
func (e DAPPEstimate) UsableFraction() float64 {
	total := e.AlignedPairs + e.Misaligned
	if total == 0 {
		return 0
	}
	return float64(e.AlignedPairs) / float64(total)
}
