// Package baseline implements the three strawman protocols of paper §3
// that motivate VPM's design, so the experiments can compare them head
// to head on the same simulated substrate:
//
//   - Strawman (§3.1): a receipt for every packet. Computable and
//     verifiable, but the per-packet state and reporting bandwidth are
//     not tunable.
//   - Trajectory Sampling ++ (§3.2): hash-sampled receipts. Tunable and
//     computable, but the sampling predicate is evaluable at forwarding
//     time, so domains can detect measured packets and treat them
//     preferentially (sampling bias).
//   - Difference Aggregator ++ (§3.3): per-aggregate packet counts and
//     timestamp sums (after the Lossy Difference Aggregator). Tunable,
//     but reordering near cutting points breaks aggregate alignment,
//     and only loss and average delay — no delay quantiles — are
//     computable.
package baseline

import (
	"vpm/internal/packet"
	"vpm/internal/receipt"
)

// StrawmanRecord is one per-packet receipt: the §3.1 strawman keeps a
// digest and timestamp for every single packet.
type StrawmanRecord struct {
	PktID  uint64
	TimeNS int64
}

// Strawman is one HOP's §3.1 monitor: a receipt per packet. It
// implements netsim.Observer.
type Strawman struct {
	Records []StrawmanRecord
}

// Observe appends a per-packet receipt.
func (s *Strawman) Observe(_ *packet.Packet, digest uint64, tNS int64) {
	s.Records = append(s.Records, StrawmanRecord{PktID: digest, TimeNS: tNS})
}

// ReceiptBytes returns the reporting cost: one 〈PktID, Time〉 record
// per packet at the wire record size.
func (s *Strawman) ReceiptBytes() int64 {
	return int64(len(s.Records)) * receipt.SampleRecordBytes
}

// StrawmanCompare computes exact loss and per-packet delays between
// two strawman monitors: every packet in up is matched in down by
// digest; unmatched packets are exact losses.
func StrawmanCompare(up, down *Strawman) (lost int, delaysNS []float64) {
	downTime := make(map[uint64]int64, len(down.Records))
	for _, r := range down.Records {
		downTime[r.PktID] = r.TimeNS
	}
	for _, r := range up.Records {
		td, ok := downTime[r.PktID]
		if !ok {
			lost++
			continue
		}
		delaysNS = append(delaysNS, float64(td-r.TimeNS))
	}
	return lost, delaysNS
}
