package baseline

import (
	"math"
	"testing"

	"vpm/internal/delaymodel"
	"vpm/internal/lossmodel"
	"vpm/internal/netsim"
	"vpm/internal/packet"
	"vpm/internal/quantile"
	"vpm/internal/receipt"
	"vpm/internal/stats"
	"vpm/internal/trace"
)

// world runs a Fig-1 simulation with observers at X's ingress (4) and
// egress (5), returning the ground truth.
func world(t testing.TB, obs4, obs5 netsim.Observer, lossX float64, congestX bool, biased func(*packet.Packet, uint64) bool) *netsim.Result {
	t.Helper()
	tc := trace.Config{
		Seed:       21,
		DurationNS: int64(500e6),
		Paths:      []trace.PathSpec{trace.DefaultPath(100000)},
	}
	pkts, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	path := netsim.Fig1Path(13)
	xi := path.DomainIndex("X")
	if lossX > 0 {
		ge, err := lossmodel.FromTargetLoss(lossX, 8, stats.NewRNG(2))
		if err != nil {
			t.Fatal(err)
		}
		path.Domains[xi].Loss = ge
	}
	if congestX {
		q, err := delaymodel.New(delaymodel.BurstyUDPScenario(4))
		if err != nil {
			t.Fatal(err)
		}
		path.Domains[xi].Delay = q
	}
	path.Domains[xi].Preferential = biased
	res, err := path.Run(pkts, map[receipt.HOPID]netsim.Observer{4: obs4, 5: obs5})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestStrawmanExact(t *testing.T) {
	up, down := &Strawman{}, &Strawman{}
	res := world(t, up, down, 0.15, false, nil)
	truth, _ := res.DomainByName("X")
	lost, delays := StrawmanCompare(up, down)
	if lost != int(truth.DroppedInside) {
		t.Fatalf("strawman loss %d != truth %d", lost, truth.DroppedInside)
	}
	if len(delays) != int(truth.Out) {
		t.Fatalf("strawman delays %d != delivered %d", len(delays), truth.Out)
	}
	if up.ReceiptBytes() != int64(truth.In)*receipt.SampleRecordBytes {
		t.Error("strawman cost accounting wrong")
	}
}

func TestStrawmanCostNotTunable(t *testing.T) {
	// The §3.1 critique: receipt bytes scale with every packet.
	up := &Strawman{}
	res := world(t, up, &Strawman{}, 0, false, nil)
	perPkt := float64(up.ReceiptBytes()) / float64(res.Sent)
	if perPkt != float64(receipt.SampleRecordBytes) {
		t.Fatalf("strawman cost %v B/pkt, want %d", perPkt, receipt.SampleRecordBytes)
	}
}

func TestTSPPHonestEstimation(t *testing.T) {
	up := NewTrajectorySampling(0.01)
	down := NewTrajectorySampling(0.01)
	res := world(t, up, down, 0.20, true, nil)
	truth, _ := res.DomainByName("X")
	est := TSPPCompare(up, down, 0.95)
	if est.SampledIn < 300 {
		t.Fatalf("too few samples: %d", est.SampledIn)
	}
	if math.Abs(est.LossRate-truth.LossRate()) > 0.05 {
		t.Errorf("TS++ honest loss %v vs truth %v", est.LossRate, truth.LossRate())
	}
	acc, err := quantile.AccuracyNS(est.DelaysNS, truth.TrueDelaysNS, nil)
	if err != nil {
		t.Fatal(err)
	}
	if acc > 4e6 {
		t.Errorf("TS++ honest delay accuracy %vms too poor", acc/1e6)
	}
	if up.Observed() == 0 || up.ReceiptBytes() == 0 {
		t.Error("accounting empty")
	}
}

func TestTSPPBiasAttackSucceeds(t *testing.T) {
	// §3.2: the domain recognizes sampled packets at forwarding time
	// and exempts them from loss and congestion. Its estimated
	// performance becomes near-perfect while real traffic suffers.
	up := NewTrajectorySampling(0.01)
	down := NewTrajectorySampling(0.01)
	biased := func(_ *packet.Packet, digest uint64) bool { return up.Sampled(digest) }
	res := world(t, up, down, 0.20, true, biased)
	truth, _ := res.DomainByName("X")
	est := TSPPCompare(up, down, 0.95)
	if truth.LossRate() < 0.15 {
		t.Fatalf("true loss %v should remain high for unsampled traffic", truth.LossRate())
	}
	if est.LossRate > 0.02 {
		t.Fatalf("bias attack failed: estimated loss %v", est.LossRate)
	}
	// Estimated delays flatter too: every sampled packet skipped the
	// congestion queue.
	p90est := stats.Quantile(est.DelaysNS, 0.9)
	p90true := stats.Quantile(truth.TrueDelaysNS, 0.9)
	if p90est > p90true/2 {
		t.Errorf("bias attack should flatter delays: est p90 %vms vs true %vms",
			p90est/1e6, p90true/1e6)
	}
}

func TestDAPPHonestNoReorder(t *testing.T) {
	// With reordering disabled, DA++ computes loss exactly and mean
	// delay well.
	up := NewDiffAggregator(0.001)
	down := NewDiffAggregator(0.001)
	tc := trace.Config{
		Seed:       22,
		DurationNS: int64(500e6),
		Paths:      []trace.PathSpec{trace.DefaultPath(100000)},
	}
	pkts, err := trace.Generate(tc)
	if err != nil {
		t.Fatal(err)
	}
	path := netsim.Fig1Path(14)
	for i := range path.Domains {
		path.Domains[i].ReorderJitterNS = 0
	}
	for i := range path.Links {
		path.Links[i].JitterNS = 0
	}
	xi := path.DomainIndex("X")
	ge, _ := lossmodel.FromTargetLoss(0.10, 8, stats.NewRNG(3))
	path.Domains[xi].Loss = ge
	res, err := path.Run(pkts, map[receipt.HOPID]netsim.Observer{4: up, 5: down})
	if err != nil {
		t.Fatal(err)
	}
	up.Flush()
	down.Flush()
	truth, _ := res.DomainByName("X")
	est := DAPPCompare(up, down)
	if est.AlignedPairs == 0 {
		t.Fatal("no aligned aggregates")
	}
	// Loss within aligned aggregates tracks the true rate. (Some
	// aggregates misalign when a cutting point itself is dropped.)
	if math.Abs(est.LossRate()-truth.LossRate()) > 0.03 {
		t.Errorf("DA++ loss %v vs truth %v", est.LossRate(), truth.LossRate())
	}
	if est.LossFreePairs > 0 && est.MeanDelayNS <= 0 {
		t.Error("mean delay not computed")
	}
}

func TestDAPPBreaksUnderReordering(t *testing.T) {
	// §3.3: reordering around cutting points misaligns aggregates;
	// a substantial fraction become unusable. (VPM's AggTrans
	// patch-up is the fix — see internal/aggregation tests.)
	mk := func(jitter int64) DAPPEstimate {
		up := NewDiffAggregator(0.01)
		down := NewDiffAggregator(0.01)
		tc := trace.Config{
			Seed:       23,
			DurationNS: int64(300e6),
			Paths:      []trace.PathSpec{trace.DefaultPath(100000)},
		}
		pkts, err := trace.Generate(tc)
		if err != nil {
			t.Fatal(err)
		}
		path := netsim.Fig1Path(15)
		for i := range path.Domains {
			path.Domains[i].ReorderJitterNS = jitter
		}
		if _, err := path.Run(pkts, map[receipt.HOPID]netsim.Observer{4: up, 5: down}); err != nil {
			t.Fatal(err)
		}
		up.Flush()
		down.Flush()
		return DAPPCompare(up, down)
	}
	ordered := mk(0)
	reordered := mk(500_000) // 0.5 ms jitter at 10 µs packet spacing
	if ordered.UsableFraction() < 0.95 {
		t.Fatalf("ordered run should align nearly all aggregates, got %v", ordered.UsableFraction())
	}
	if reordered.UsableFraction() > ordered.UsableFraction()-0.05 {
		t.Errorf("reordering should break alignment: %v vs %v",
			reordered.UsableFraction(), ordered.UsableFraction())
	}
}

func TestDAPPEmptyEstimate(t *testing.T) {
	var e DAPPEstimate
	if e.LossRate() != 0 || e.UsableFraction() != 0 {
		t.Error("zero-value estimate should be all zeros")
	}
}
