package intern

import (
	"fmt"
	"testing"
)

func TestCanonical(t *testing.T) {
	var tab Table
	a := tab.Bytes([]byte("HOP4 10.1.0.0/16->172.16.0.0/16"))
	b := tab.Bytes([]byte("HOP4 10.1.0.0/16->172.16.0.0/16"))
	if a != b {
		t.Fatal("contents differ")
	}
	if got := tab.String("HOP4 10.1.0.0/16->172.16.0.0/16"); got != a {
		t.Fatal("String and Bytes disagree")
	}
	if tab.Len() != 1 {
		t.Fatalf("table holds %d entries, want 1", tab.Len())
	}
}

func TestHitPathZeroAlloc(t *testing.T) {
	var tab Table
	key := []byte("HOP7 10.2.0.0/16->172.16.0.0/16")
	tab.Bytes(key)
	allocs := testing.AllocsPerRun(100, func() {
		if s := tab.Bytes(key); len(s) == 0 {
			t.Fatal("empty")
		}
	})
	if allocs != 0 {
		t.Fatalf("interned hit allocated %.1f times per call", allocs)
	}
}

func TestBounded(t *testing.T) {
	var tab Table
	for i := 0; i < maxEntries+100; i++ {
		tab.Bytes([]byte(fmt.Sprintf("key-%d", i)))
	}
	if tab.Len() > maxEntries {
		t.Fatalf("table grew to %d entries past the %d bound", tab.Len(), maxEntries)
	}
	// A full table still answers correctly.
	if got := tab.Bytes([]byte("overflow-key")); got != "overflow-key" {
		t.Fatalf("full table returned %q", got)
	}
}

func TestGlobalHelpers(t *testing.T) {
	a := Bytes([]byte("global-key"))
	if b := String("global-key"); b != a {
		t.Fatal("global helpers disagree")
	}
}
