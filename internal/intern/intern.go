// Package intern provides a tiny byte-string interning table. The hot
// receipt pipeline renders the same identifiers over and over — store
// keys, CIDR prefixes, HOP names — and every naive render allocates a
// fresh string. Interning returns one canonical string per distinct
// byte content: the first render pays the allocation, every later
// render is a map hit that allocates nothing (the Go compiler elides
// the []byte→string conversion in map lookups).
//
// Tables are bounded: past maxEntries the table stops admitting new
// strings and hands back ordinary copies, so adversarial key churn
// cannot grow the table without bound (the same reason the receipt
// store windows its epochs).
package intern

import "sync"

// maxEntries bounds a table; see the package comment.
const maxEntries = 1 << 16

// Table interns byte strings. The zero value is ready to use; a Table
// is safe for concurrent use.
type Table struct {
	mu sync.RWMutex
	m  map[string]string
}

// Bytes returns the canonical string equal to b. On a hit no
// allocation happens; on a miss the string is copied once and cached
// (unless the table is full, in which case a plain copy is returned).
func (t *Table) Bytes(b []byte) string {
	t.mu.RLock()
	s, ok := t.m[string(b)] // compiler avoids allocating for the lookup key
	t.mu.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	t.mu.Lock()
	if t.m == nil {
		t.m = make(map[string]string)
	}
	if cached, ok := t.m[s]; ok {
		s = cached // lost the race: keep the first canonical copy
	} else if len(t.m) < maxEntries {
		t.m[s] = s
	}
	t.mu.Unlock()
	return s
}

// String returns the canonical string equal to s.
func (t *Table) String(s string) string {
	t.mu.RLock()
	c, ok := t.m[s]
	t.mu.RUnlock()
	if ok {
		return c
	}
	return t.Bytes([]byte(s))
}

// Len returns the number of interned strings.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.m)
}

// global is the process-wide table behind the package-level helpers.
var global Table

// Bytes interns b in the process-wide table.
func Bytes(b []byte) string { return global.Bytes(b) }

// String interns s in the process-wide table.
func String(s string) string { return global.String(s) }
