// Command vpm-bench regenerates the paper's evaluation: every table
// and figure (DESIGN.md's per-experiment index E1-E8), printed as
// aligned text or Markdown.
//
// Usage:
//
//	vpm-bench [-run all|fig2|fig3|table1|memory|bandwidth|click|verif|attacks|seqdetect|throughput|verify|epochs|topo|churn|segstore]
//	          [-duration 1s] [-rate 100000] [-seed 1] [-markdown] [-o out.md]
//	          [-json] [-shards 1,2,4,8] [-workers 1,2,4,8]
//	          [-churn-keys 1048576] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// The defaults reproduce the paper's scale (100k packets/second for
// one second per experiment point). Use a smaller -duration for a
// quick pass.
//
// -run throughput measures the collection pipeline (serial per-packet
// Observe vs the sharded batch pipeline at each -shards count);
// -run verify measures the verification pipeline on the 16-HOP ×
// 64-path scenario (per-key rebuild baseline vs the shared indexed
// receipt store at each -workers pool size). With -json both emit a
// machine-readable document so the perf trajectory can be tracked
// across PRs:
//
//	vpm-bench -run throughput -json -o BENCH_throughput.json
//	vpm-bench -run verify -json -o BENCH_verify.json
//
// -run topo sweeps the mesh topology families (star, tree, Clos-like
// ECMP fabric, random AS graph): honest and faulty-shared-link
// scenarios per family, the faulty one across the -shards × -workers
// grid with byte-identical verdicts enforced, shared-link blame
// localization reported per row:
//
//	vpm-bench -run topo -json -shards 1,4 -workers 1,4 -o BENCH_topo.json
//
// -run throughput also meters steady-state heap behavior (allocs,
// bytes and encoded receipt bytes per packet across the whole
// observe → drain → encode → recycle cycle) and adds a sketch-backend
// row; -run churn cycles -churn-keys distinct traffic keys through
// the collector in disjoint waves with idle-path eviction on and
// reports whether the live heap stays flat. -cpuprofile/-memprofile
// write pprof profiles of whichever experiment runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"vpm/internal/experiments"
	"vpm/internal/fleet"
)

func main() {
	var (
		run        = flag.String("run", "all", "experiment to run: all, fig2, fig3, table1, memory, bandwidth, click, verif, attacks, seqdetect, throughput, verify, epochs, topo, churn, segstore, fleet")
		duration   = flag.Duration("duration", time.Second, "trace duration per experiment point (the epoch interval for -run epochs)")
		rate       = flag.Float64("rate", 100000, "foreground path packet rate (packets/second)")
		seed       = flag.Uint64("seed", 1, "experiment seed")
		markdown   = flag.Bool("markdown", false, "emit Markdown tables")
		jsonOut    = flag.Bool("json", false, "emit machine-readable JSON (throughput, verify and epochs experiments only)")
		shards     = flag.String("shards", "1,2,4,8", "comma-separated shard counts for -run throughput")
		workers    = flag.String("workers", "1,2,4,8", "comma-separated verifier worker-pool sizes for -run verify")
		epochs     = flag.Int("epochs", 8, "epochs to rotate through for -run epochs (and key waves for -run churn)")
		retain     = flag.String("retention", "2,4", "comma-separated retention windows for -run epochs")
		churnKeys  = flag.Int("churn-keys", 1<<20, "distinct traffic keys to cycle through for -run churn")
		fltDomains = flag.Int("fleet-domains", 1000, "random-AS topology size for -run fleet")
		fltKeys    = flag.Int("fleet-keys", 1<<20, "distinct traffic keys for -run fleet")
		fltColls   = flag.Int("fleet-collectors", 2, "collector processes for -run fleet")
		fltWidths  = flag.String("fleet-verifiers", "1,2,4", "comma-separated verifier tier widths for -run fleet")
		fltCheck   = flag.Bool("fleet-check", true, "also replay the fleet world single-process and require byte-identical merges")
		out        = flag.String("o", "", "write output to file instead of stdout")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile (taken after the experiments finish) to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		defer func() {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "vpm-bench:", err)
			}
			f.Close()
		}()
	}

	shardCounts, err := parseCounts(*shards)
	if err != nil {
		fatal(err)
	}
	workerCounts, err := parseCounts(*workers)
	if err != nil {
		fatal(err)
	}
	retentions, err := parseCounts(*retain)
	if err != nil {
		fatal(err)
	}

	cfg := experiments.Config{
		Seed:       *seed,
		RatePPS:    *rate,
		DurationNS: duration.Nanoseconds(),
	}

	if *jsonOut && *run != "throughput" && *run != "verify" && *run != "epochs" && *run != "attacks" && *run != "seqdetect" && *run != "topo" && *run != "churn" && *run != "segstore" && *run != "fleet" {
		fatal(fmt.Errorf("-json is only supported with -run throughput, verify, epochs, attacks, seqdetect, topo, churn, segstore or fleet"))
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	wanted := func(name string) bool { return *run == "all" || *run == name }
	ran := false

	section := func(title string) {
		if *markdown {
			fmt.Fprintf(w, "\n## %s\n\n", title)
		} else {
			fmt.Fprintf(w, "\n=== %s ===\n\n", title)
		}
	}

	if wanted("table1") {
		ran = true
		section("Table 1 — partitions, coarser-than, joins")
		fmt.Fprint(w, experiments.Table1Render(experiments.Table1(), *markdown))
	}
	if wanted("fig2") {
		ran = true
		section("Figure 2 — delay accuracy [ms] vs sampling rate, per loss level")
		rows, err := experiments.Fig2(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprint(w, experiments.Fig2Render(rows, *markdown))
	}
	if wanted("fig3") {
		ran = true
		section("Figure 3 — loss granularity [sec] vs loss rate")
		rows, err := experiments.Fig3(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprint(w, experiments.Fig3Render(rows, *markdown))
	}
	if wanted("memory") {
		ran = true
		section("§7.1 — memory overhead (paper arithmetic vs this implementation)")
		fmt.Fprint(w, experiments.MemoryRender(experiments.MemoryOverhead(), *markdown))
	}
	if wanted("bandwidth") {
		ran = true
		section("§7.1 — receipt bandwidth overhead")
		rows, err := experiments.BandwidthOverhead(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprint(w, experiments.BandwidthRender(rows, *markdown))
	}
	if wanted("click") {
		ran = true
		section("§7.1 — forwarding throughput with and without the VPM collector")
		rows, err := experiments.Click(cfg, 2_000_000)
		if err != nil {
			fatal(err)
		}
		fmt.Fprint(w, experiments.ClickRender(rows, *markdown))
	}
	if wanted("verif") {
		ran = true
		section("§7.2 — verifiability vs the witness's sampling rate")
		rows, err := experiments.Verifiability(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprint(w, experiments.VerifiabilityRender(rows, *markdown))
	}
	if wanted("attacks") {
		ran = true
		matrix, err := experiments.AttackMatrix(cfg)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			// The scenario-coverage trajectory document (BENCH_4.json
			// and onward): every adversary × mode with its verdict and
			// blame, plus the cross-protocol ablation for context.
			ablation, err := experiments.Attacks(cfg)
			if err != nil {
				fatal(err)
			}
			doc := struct {
				Experiment string                  `json:"experiment"`
				Seed       uint64                  `json:"seed"`
				RatePPS    float64                 `json:"rate_pps"`
				DurationNS int64                   `json:"duration_ns"`
				Rows       []experiments.MatrixRow `json:"rows"`
				Ablation   []experiments.AttackRow `json:"ablation"`
			}{"attacks", cfg.Seed, cfg.RatePPS, cfg.DurationNS, matrix, ablation}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(doc); err != nil {
				fatal(err)
			}
		} else {
			section("§3/§5 — protocol × adversary ablation")
			rows, err := experiments.Attacks(cfg)
			if err != nil {
				fatal(err)
			}
			fmt.Fprint(w, experiments.AttacksRender(rows, *markdown))
			section("Byzantine HOP matrix — adversary × pipeline mode")
			fmt.Fprint(w, experiments.MatrixRender(matrix, *markdown))
		}
	}
	if wanted("throughput") {
		ran = true
		rows, err := experiments.Throughput(cfg, shardCounts)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			doc := struct {
				Experiment string                      `json:"experiment"`
				Seed       uint64                      `json:"seed"`
				RatePPS    float64                     `json:"rate_pps"`
				DurationNS int64                       `json:"duration_ns"`
				Rows       []experiments.ThroughputRow `json:"rows"`
			}{"throughput", cfg.Seed, cfg.RatePPS, cfg.DurationNS, rows}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(doc); err != nil {
				fatal(err)
			}
		} else {
			section("Collection pipeline — serial vs sharded throughput")
			fmt.Fprint(w, experiments.ThroughputRender(rows, *markdown))
		}
	}
	if wanted("verify") {
		ran = true
		rows, err := experiments.Verify(cfg, workerCounts)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			doc := struct {
				Experiment string                  `json:"experiment"`
				Seed       uint64                  `json:"seed"`
				RatePPS    float64                 `json:"rate_pps"`
				DurationNS int64                   `json:"duration_ns"`
				Rows       []experiments.VerifyRow `json:"rows"`
			}{"verify", cfg.Seed, cfg.RatePPS, cfg.DurationNS, rows}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(doc); err != nil {
				fatal(err)
			}
		} else {
			section("Verification pipeline — per-key rebuild vs shared indexed store")
			fmt.Fprint(w, experiments.VerifyRender(rows, *markdown))
		}
	}
	if wanted("topo") {
		ran = true
		// The topology grid reuses -shards and -workers; the sweep
		// itself enforces byte-identical verdicts across the grid.
		rows, err := experiments.Topo(cfg, shardCounts, workerCounts)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			doc := struct {
				Experiment string                `json:"experiment"`
				Seed       uint64                `json:"seed"`
				RatePPS    float64               `json:"rate_pps"`
				DurationNS int64                 `json:"duration_ns"`
				Rows       []experiments.TopoRow `json:"rows"`
			}{"topo", cfg.Seed, cfg.RatePPS, cfg.DurationNS, rows}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(doc); err != nil {
				fatal(err)
			}
		} else {
			section("Mesh & multipath — topology families, shared-link blame")
			fmt.Fprint(w, experiments.TopoRender(rows, *markdown))
		}
	}
	if wanted("segstore") {
		ran = true
		// The durable-store sweep: block write + seal throughput and
		// cold-recovery replay, in-memory ceiling vs real disk. -epochs
		// scales the store size (64 per backend by default).
		segEpochs := *epochs
		if segEpochs <= 8 {
			segEpochs = 64 // the vpm-node default is too small to measure
		}
		rows, err := experiments.Segstore(segEpochs)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			doc := struct {
				Experiment string                    `json:"experiment"`
				Seed       uint64                    `json:"seed"`
				Epochs     int                       `json:"epochs"`
				Rows       []experiments.SegstoreRow `json:"rows"`
			}{"segstore", cfg.Seed, segEpochs, rows}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(doc); err != nil {
				fatal(err)
			}
		} else {
			section("Durable segment store — write and recovery-replay throughput")
			fmt.Fprint(w, experiments.SegstoreRender(rows, *markdown))
		}
	}
	if *run == "churn" { // too heavy for "all": cycles -churn-keys distinct paths
		ran = true
		// The sketch row's shard count bounds the fan-out; churn uses
		// the largest requested shard count.
		churnShards := shardCounts[len(shardCounts)-1]
		row, err := experiments.Churn(*churnKeys, *epochs, 4, churnShards)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			doc := struct {
				Experiment string               `json:"experiment"`
				Seed       uint64               `json:"seed"`
				Shards     int                  `json:"shards"`
				Row        experiments.ChurnRow `json:"row"`
			}{"churn", cfg.Seed, churnShards, row}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(doc); err != nil {
				fatal(err)
			}
		} else {
			section("Key churn — monitoring-cache eviction under path turnover")
			fmt.Fprint(w, experiments.ChurnRender(row, *markdown))
		}
	}
	if wanted("seqdetect") {
		ran = true
		// The sequential-detection frontier: latency-vs-magnitude
		// curves (SPRT vs a memoryless per-epoch batch test) plus the
		// adversary matrix rows carrying the batch/sequential
		// epochs-to-verdict columns the CI gate checks.
		frontier, err := experiments.SeqFrontier(cfg)
		if err != nil {
			fatal(err)
		}
		matrix, err := experiments.AttackMatrix(cfg)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			doc := struct {
				Experiment string                       `json:"experiment"`
				Seed       uint64                       `json:"seed"`
				RatePPS    float64                      `json:"rate_pps"`
				DurationNS int64                        `json:"duration_ns"`
				Frontier   []experiments.SeqFrontierRow `json:"frontier"`
				Matrix     []experiments.MatrixRow      `json:"matrix"`
			}{"seqdetect", cfg.Seed, cfg.RatePPS, cfg.DurationNS, frontier, matrix}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(doc); err != nil {
				fatal(err)
			}
		} else {
			section("Sequential detection — latency-vs-magnitude frontier (SPRT vs per-epoch batch)")
			fmt.Fprint(w, experiments.SeqFrontierRender(frontier, *markdown))
			section("Adversary matrix — batch vs sequential epochs-to-verdict")
			fmt.Fprint(w, experiments.MatrixRender(matrix, *markdown))
		}
	}
	if wanted("epochs") {
		ran = true
		rows, err := experiments.Epochs(cfg, *epochs, retentions)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			doc := struct {
				Experiment string                  `json:"experiment"`
				Seed       uint64                  `json:"seed"`
				RatePPS    float64                 `json:"rate_pps"`
				IntervalNS int64                   `json:"interval_ns"`
				Epochs     int                     `json:"epochs"`
				Rows       []experiments.EpochsRow `json:"rows"`
			}{"epochs", cfg.Seed, cfg.RatePPS, cfg.DurationNS, *epochs, rows}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(doc); err != nil {
				fatal(err)
			}
		} else {
			section("Continuous operation — batch vs rotating epochs")
			fmt.Fprint(w, experiments.EpochsRender(rows, *markdown))
		}
	}
	// -run fleet only, never under "all": it compiles and spawns the
	// real vpm-fleet process tree, which is a CI job of its own, not a
	// table in the default sweep.
	if *run == "fleet" {
		ran = true
		widths, err := parseCounts(*fltWidths)
		if err != nil {
			fatal(err)
		}
		// The interval is -duration; the rate is derived so the epoch
		// stream touches every traffic key about twice over the run.
		fleetEpochs := 4
		spec := fleet.Spec{
			Seed:       *seed,
			Domains:    *fltDomains,
			ExtraLinks: *fltDomains / 2,
			Keys:       *fltKeys,
			Epochs:     fleetEpochs,
			IntervalNS: duration.Nanoseconds(),
			RatePPS:    2 * float64(*fltKeys) / (float64(fleetEpochs) * duration.Seconds()),
			Collectors: *fltColls,
		}
		rows, err := experiments.Fleet(spec, widths, *fltCheck)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			doc := struct {
				Experiment string           `json:"experiment"`
				Seed       uint64           `json:"seed"`
				Collectors int              `json:"collectors"`
				IntervalNS int64            `json:"interval_ns"`
				Checked    bool             `json:"checked_against_reference"`
				Rows       []fleet.BenchRow `json:"rows"`
			}{"fleet", *seed, *fltColls, duration.Nanoseconds(), *fltCheck, rows}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(doc); err != nil {
				fatal(err)
			}
		} else {
			section("Fleet scale-out — verifier processes vs keys/s, byte-identical merges")
			fmt.Fprint(w, experiments.FleetRender(rows, *markdown))
		}
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q (want one of all, fig2, fig3, table1, memory, bandwidth, click, verif, attacks, seqdetect, throughput, verify, epochs, topo, churn, segstore, fleet)", *run))
	}
}

// parseCounts parses a comma-separated positive-integer list
// ("1,2,4,8"), shared by -shards and -workers.
func parseCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vpm-bench:", strings.TrimPrefix(err.Error(), "vpm-bench: "))
	os.Exit(1)
}
