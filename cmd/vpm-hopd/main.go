// Command vpm-hopd is the receipt-dissemination daemon: it runs a VPM
// deployment over a trace (generated or loaded), then serves every
// HOP's ed25519-signed receipt bundles over HTTP — the paper's
// "administrative web-site" realization of Assumption 2.
//
// Endpoints:
//
//	GET /hops                    — JSON list of HOPs and their public keys (hex)
//	GET /hop/{id}/receipts?since=N — signed bundles from HOP id
//
// Usage:
//
//	vpm-hopd [-addr :8407] [-trace file.vpmtrc] [-duration 1s] [-rate 100000] [-seed 1]
package main

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"vpm/internal/core"
	"vpm/internal/dissem"
	"vpm/internal/netsim"
	"vpm/internal/packet"
	"vpm/internal/receipt"
	"vpm/internal/trace"
)

func main() {
	var (
		addr      = flag.String("addr", ":8407", "listen address")
		traceFile = flag.String("trace", "", "trace file (empty: generate synthetically)")
		duration  = flag.Duration("duration", time.Second, "synthetic trace duration")
		rate      = flag.Float64("rate", 100000, "synthetic trace packet rate")
		seed      = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()

	var pkts []packet.Packet
	tc := trace.Config{
		Seed:       *seed,
		DurationNS: duration.Nanoseconds(),
		Paths:      []trace.PathSpec{trace.DefaultPath(*rate)},
	}
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		check(err)
		pkts, err = trace.Read(f)
		f.Close()
		check(err)
	} else {
		var err error
		pkts, err = trace.Generate(tc)
		check(err)
	}

	path := netsim.Fig1Path(*seed + 100)
	dep, err := core.NewDeployment(path, tc.Table(), core.DefaultDeployConfig())
	check(err)
	_, err = path.Run(pkts, dep.Observers())
	check(err)
	dep.Finalize()

	// One signed bundle server per HOP.
	servers := make(map[receipt.HOPID]*dissem.Server)
	type hopInfo struct {
		HOP       uint32 `json:"hop"`
		PublicKey string `json:"public_key"`
	}
	var infos []hopInfo
	var hops []int
	for id := range dep.Processors {
		hops = append(hops, int(id))
	}
	sort.Ints(hops)
	for _, hi := range hops {
		id := receipt.HOPID(hi)
		var keySeed [32]byte
		keySeed[0] = byte(*seed)
		keySeed[1] = byte(hi)
		signer := dissem.NewSigner(keySeed)
		srv := dissem.NewServer(id, signer)
		proc := dep.Processors[id]
		srv.Publish(proc.CombinedSamples(), proc.Aggs)
		servers[id] = srv
		infos = append(infos, hopInfo{
			HOP:       uint32(id),
			PublicKey: hex.EncodeToString(signer.Public()),
		})
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/hops", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(infos); err != nil {
			log.Printf("encoding /hops: %v", err)
		}
	})
	mux.HandleFunc("/hop/", func(w http.ResponseWriter, r *http.Request) {
		parts := strings.Split(strings.TrimPrefix(r.URL.Path, "/hop/"), "/")
		if len(parts) != 2 || parts[1] != "receipts" {
			http.NotFound(w, r)
			return
		}
		id, err := strconv.ParseUint(parts[0], 10, 32)
		if err != nil {
			http.Error(w, "bad HOP id", http.StatusBadRequest)
			return
		}
		srv, ok := servers[receipt.HOPID(id)]
		if !ok {
			http.NotFound(w, r)
			return
		}
		srv.ServeHTTP(w, r)
	})

	ln, err := net.Listen("tcp", *addr)
	check(err)
	// A stalled peer must not be able to pin a connection open forever,
	// and a signal must drain in-flight fetches instead of dropping
	// them mid-bundle.
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	log.Printf("vpm-hopd: processed %d packets; serving receipts for %d HOPs on %s", len(pkts), len(servers), ln.Addr())

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		check(fmt.Errorf("serve: %w", err))
	case sig := <-sigs:
		log.Printf("vpm-hopd: %v — draining", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("vpm-hopd: drain deadline exceeded — closing")
		srv.Close()
	}
	log.Printf("vpm-hopd: clean shutdown")
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpm-hopd:", err)
		os.Exit(1)
	}
}
