// Command vpm-sim runs one scenario on the paper's Figure 1 topology
// (S -> L -> X -> N -> D) and prints what a verifier would conclude:
// each domain's actual vs receipt-estimated loss and delay, and the
// consistency verdict for every inter-domain link.
//
// Usage:
//
//	vpm-sim [-loss-x 0.25] [-congest-x] [-sample 0.01] [-agg 1e-5]
//	        [-lie none|blame-shift|shave-delays] [-duration 1s]
//	        [-rate 100000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vpm/internal/core"
	"vpm/internal/delaymodel"
	"vpm/internal/lossmodel"
	"vpm/internal/netsim"
	"vpm/internal/packet"
	"vpm/internal/quantile"
	"vpm/internal/receipt"
	"vpm/internal/stats"
	"vpm/internal/trace"
)

func main() {
	var (
		lossX    = flag.Float64("loss-x", 0, "Gilbert-Elliott loss rate inside domain X")
		congestX = flag.Bool("congest-x", false, "congest X with the bursty-UDP bottleneck")
		sample   = flag.Float64("sample", 0.01, "every domain's sampling rate")
		agg      = flag.Float64("agg", 1e-5, "every domain's aggregation (cut) rate")
		lie      = flag.String("lie", "none", "X's strategy: none, blame-shift, shave-delays")
		duration = flag.Duration("duration", time.Second, "trace duration")
		rate     = flag.Float64("rate", 100000, "packet rate (packets/second)")
		seed     = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()

	tc := trace.Config{
		Seed:       *seed,
		DurationNS: duration.Nanoseconds(),
		Paths:      []trace.PathSpec{trace.DefaultPath(*rate)},
	}
	pkts, err := trace.Generate(tc)
	check(err)
	key := packet.PathKey{Src: tc.Paths[0].SrcPrefix, Dst: tc.Paths[0].DstPrefix}

	path := netsim.Fig1Path(*seed + 100)
	xi := path.DomainIndex("X")
	if *congestX {
		q, err := delaymodel.New(delaymodel.BurstyUDPScenario(*seed + 7))
		check(err)
		path.Domains[xi].Delay = q
	}
	if *lossX > 0 {
		ge, err := lossmodel.FromTargetLoss(*lossX, 8, stats.NewRNG(*seed+13))
		check(err)
		path.Domains[xi].Loss = ge
	}

	dc := core.DefaultDeployConfig()
	dc.Default = core.Tuning{SampleRate: *sample, AggRate: *agg}
	dep, err := core.NewDeployment(path, tc.Table(), dc)
	check(err)

	res, err := path.Run(pkts, dep.Observers())
	check(err)
	dep.Finalize()

	fmt.Printf("sent %d packets, delivered %d end to end\n\n", res.Sent, res.Delivered)

	v := buildVerifier(dep, path, key, *lie)

	fmt.Println("Per-domain performance (actual vs receipt-estimated):")
	for _, name := range []string{"L", "X", "N"} {
		truth, _ := res.DomainByName(name)
		rep, err := v.DomainReport(name, quantile.DefaultQuantiles, 0.95)
		if err != nil {
			fmt.Printf("  %s: %v\n", name, err)
			continue
		}
		fmt.Printf("  %s: loss actual %.3f%%  estimated %.3f%%  (over %d joined aggregates)\n",
			name, truth.LossRate()*100, rep.Loss.Rate()*100, len(rep.Loss.Pairs))
		if len(rep.DelayEstimates) > 0 {
			trueP90 := stats.Quantile(truth.TrueDelaysNS, 0.9) / 1e6
			fmt.Printf("      p90 delay actual %.3fms  estimated %s  (n=%d)\n",
				trueP90, fmtMS(rep.DelayEstimates[1].Point), rep.DelaySamples)
		}
	}

	fmt.Println("\nLink consistency verdicts:")
	for _, lv := range v.VerifyAllLinks() {
		fmt.Printf("  %v\n", lv)
	}
	if *lie != "none" {
		fmt.Printf("\n(domain X ran the %q strategy — check the X-N link verdict above)\n", *lie)
	}
}

// buildVerifier ingests receipts, substituting X's egress receipts
// with lies when requested.
func buildVerifier(dep *core.Deployment, path *netsim.Path, key packet.PathKey, lie string) *core.Verifier {
	if lie == "none" {
		return dep.NewVerifier(key)
	}
	v := core.NewVerifier(dep.Layout())
	v.SetConfig(dep.VerifierConfig())
	var xInS, xEgS receipt.SampleReceipt
	var xInA []receipt.AggReceipt
	for hop, proc := range dep.Processors {
		isXEgress := hop == 5
		for _, s := range proc.CombinedSamples() {
			if s.Path.Key != key {
				continue
			}
			switch {
			case hop == 4:
				xInS = s
				v.AddSampleReceipt(hop, s)
			case isXEgress:
				xEgS = s // held back; replaced below
			default:
				v.AddSampleReceipt(hop, s)
			}
		}
		var aggs []receipt.AggReceipt
		for _, a := range proc.Aggs {
			if a.Path.Key == key {
				aggs = append(aggs, a)
			}
		}
		if hop == 4 {
			xInA = aggs
		}
		if !isXEgress {
			v.AddAggReceipts(hop, aggs)
		} else if lie == "shave-delays" {
			v.AddAggReceipts(hop, aggs) // aggregate counts stay honest
		}
	}
	egressPath := path.PathIDFor(receipt.PathID{Key: key}, path.DomainIndex("X"), false)
	switch lie {
	case "blame-shift":
		fs, fa := core.FabricateDelivery(xInS, xInA, egressPath, 500_000)
		v.AddSampleReceipt(5, fs)
		v.AddAggReceipts(5, fa)
	case "shave-delays":
		v.AddSampleReceipt(5, core.ShaveDelays(xInS, xEgS, 0.05))
	default:
		fmt.Fprintf(os.Stderr, "vpm-sim: unknown lie %q\n", lie)
		os.Exit(1)
	}
	return v
}

func fmtMS(ns float64) string { return fmt.Sprintf("%.3fms", ns/1e6) }

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpm-sim:", err)
		os.Exit(1)
	}
}
