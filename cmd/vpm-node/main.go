// Command vpm-node runs the whole VPM pipeline continuously: the Fig1
// workload is simulated epoch by epoch, every HOP seals each interval's
// receipts and publishes them as ed25519-signed epoch-tagged bundles,
// and a rolling verifier ingests the bundles into a windowed store,
// verifies each epoch as soon as every HOP has sealed it (concurrently
// with ingest of the next), and evicts verified epochs older than the
// retention window. One line is emitted per verified epoch; a summary
// (sustained epochs/s, steady-state heap, eviction counts) is printed
// on clean shutdown.
//
// Usage:
//
//	vpm-node [-epochs 8] [-interval 250ms] [-rate 50000] [-seed 1]
//	         [-retention 2] [-shards 1] [-workers 1] [-json] [-quiet]
//
// SIGINT or SIGTERM stops cleanly at the next epoch boundary (systemd
// and docker stop send SIGTERM; treating it like SIGINT is what makes
// the daemon's epoch-boundary shutdown reachable in production — see
// docs/OPERATIONS.md). A second signal aborts immediately via context
// cancellation. The process exits 0 iff every started epoch was
// verified and shut down cleanly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vpm/internal/core"
	"vpm/internal/experiments"
)

func main() {
	var (
		epochs    = flag.Int("epochs", 8, "number of epochs to run")
		interval  = flag.Duration("interval", 250*time.Millisecond, "epoch length (simulated time)")
		rate      = flag.Float64("rate", 50000, "foreground packet rate (packets/second)")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		retention = flag.Int("retention", 2, "verified epochs kept before eviction")
		shards    = flag.Int("shards", 1, "collector shards per HOP (0 = GOMAXPROCS)")
		workers   = flag.Int("workers", 1, "verifier worker-pool size (0 = GOMAXPROCS)")
		jsonOut   = flag.Bool("json", false, "emit a JSON summary instead of text")
		quiet     = flag.Bool("quiet", false, "suppress per-epoch lines")
	)
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, RatePPS: *rate, DurationNS: interval.Nanoseconds()}
	ec := core.EpochConfig{
		IntervalNS: interval.Nanoseconds(),
		Retention:  *retention,
		Workers:    *workers,
		Shards:     *shards,
	}
	if err := ec.Validate(); err != nil {
		fatal(err)
	}

	// First SIGINT/SIGTERM: finish the epoch in flight, verify it,
	// summarize, exit 0. A second signal cancels the context, which
	// aborts the collection loop mid-epoch (exit non-zero) — the
	// escape hatch when a clean boundary never comes.
	stop := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "vpm-node: signal — stopping at the next epoch boundary")
		close(stop)
		<-sigs
		fmt.Fprintln(os.Stderr, "vpm-node: second signal — aborting")
		cancel()
	}()

	onEpoch := func(rep core.EpochReport, ws core.WindowStats) {
		if *quiet || *jsonOut {
			return
		}
		fmt.Printf("epoch %3d: keys=%d matched=%d violations=%d window=%d segs (%d gced)",
			rep.Epoch, len(rep.Keys), rep.MatchedSamples(), rep.Violations(), ws.Segments, ws.Evicted)
		for _, k := range rep.Keys {
			for _, dom := range k.Domains {
				if len(dom.DelayEstimates) > 0 {
					fmt.Printf("  %s: loss=%.3f%% p50=%.2fms",
						dom.Name, dom.Loss.Rate()*100, dom.DelayEstimates[0].Point/1e6)
					break // one headline domain per line keeps it readable
				}
			}
			break
		}
		fmt.Println()
	}

	start := time.Now()
	res, err := experiments.RunContinuousOpts(cfg, ec, *epochs, experiments.ContinuousOptions{
		OnEpoch: onEpoch,
		Stop:    stop,
		Ctx:     ctx,
	})
	if err != nil {
		fatal(err)
	}
	wall := time.Since(start)

	if len(res.Reports) != res.EpochsSealed {
		// Every sealed epoch — each simulated interval plus the
		// terminal spill — must have been verified before shutdown.
		fatal(fmt.Errorf("sealed %d epochs but verified %d", res.EpochsSealed, len(res.Reports)))
	}

	if *jsonOut {
		// Same schema as vpm-bench -run epochs rows (BENCH_*.json), so
		// the two outputs cannot drift apart.
		row := experiments.EpochsRow{
			Mode:           "continuous",
			Epochs:         res.EpochsRun,
			IntervalMS:     float64(interval.Nanoseconds()) / 1e6,
			Retention:      *retention,
			Packets:        res.Packets,
			SampleReceipts: res.SampleReceipts,
			AggReceipts:    res.AggReceipts,
			MatchedSamples: res.MatchedSamples,
			Violations:     res.Violations,
			WallMS:         float64(wall.Nanoseconds()) / 1e6,
			EpochsPerSec:   float64(res.EpochsRun) / wall.Seconds(),
			HeapMB:         float64(res.HeapAllocBytes) / (1 << 20),
			SegmentsHeld:   res.Window.Segments,
			SegmentsGCed:   res.Window.Evicted,
		}
		var sum, max time.Duration
		for _, d := range res.EpochWall {
			sum += d
			if d > max {
				max = d
			}
		}
		if n := len(res.EpochWall); n > 0 {
			row.MeanEpochMS = float64(sum.Nanoseconds()) / float64(n) / 1e6
			row.MaxEpochMS = float64(max.Nanoseconds()) / 1e6
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(row); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("vpm-node: %d epochs (%v each) over %d packets in %v — %.1f epochs/s sustained\n",
		res.EpochsRun, *interval, res.Packets, wall.Round(time.Millisecond),
		float64(res.EpochsRun)/wall.Seconds())
	fmt.Printf("vpm-node: %d sample + %d aggregate receipts, %d matched samples, %d violations\n",
		res.SampleReceipts, res.AggReceipts, res.MatchedSamples, res.Violations)
	fmt.Printf("vpm-node: window holds %d segments (%d evicted), steady-state heap %.1f MB\n",
		res.Window.Segments, res.Window.Evicted, float64(res.HeapAllocBytes)/(1<<20))
	fmt.Println("vpm-node: clean shutdown")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vpm-node:", err)
	os.Exit(1)
}
