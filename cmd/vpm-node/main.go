// Command vpm-node runs the whole VPM pipeline continuously: the Fig1
// workload is simulated epoch by epoch, every HOP seals each interval's
// receipts and publishes them as ed25519-signed epoch-tagged bundles,
// and a rolling verifier ingests the bundles into a windowed store,
// verifies each epoch as soon as every HOP has sealed it (concurrently
// with ingest of the next), and evicts verified epochs older than the
// retention window. One line is emitted per verified epoch; a summary
// (sustained epochs/s, steady-state heap, eviction counts) is printed
// on clean shutdown.
//
// Usage:
//
//	vpm-node [-epochs 8] [-interval 250ms] [-rate 50000] [-seed 1]
//	         [-retention 2] [-shards 1] [-workers 1] [-json] [-quiet]
//	         [-data-dir DIR] [-disk-retention N] [-http ADDR]
//	         [-serve-only] [-pace] [-sequential]
//
// -sequential arms the rolling verifier's concurrent SPRT arm
// (internal/seqdetect): per-(link, key) sequential detectors
// accumulate evidence across packets and epochs and emit early
// verdicts — logged as a per-epoch "SEQ VERDICT" line with the
// fractional epochs-to-verdict, the crossing statistic and the
// configured (α, β) — without touching the batch verdicts, whose
// persisted encodings stay byte-identical to an unarmed run.
//
// With -data-dir, sealed epochs and their verdict reports persist to a
// durable segment store (internal/segstore): the RAM window stays the
// verification working set while history accumulates on disk, and a
// killed process recovers on restart — boot replays the store's
// manifest, reports what survived, and the deterministic pipeline
// re-executes the stream without re-persisting (or re-verifying)
// anything already durable. A store that cannot be opened —
// corrupt manifest, segment failing its checksum — is a refusal to
// start (exit 3, see BootError), never a silent empty history.
//
// -http serves the historical-verdict query API (see
// docs/OPERATIONS.md) alongside the run; -serve-only skips the
// pipeline entirely and just serves an existing store — the post-hoc
// audit mode. -pace slows the simulation to real time (one epoch per
// -interval of wall clock), the cadence a live deployment would have.
//
// SIGINT or SIGTERM stops cleanly at the next epoch boundary (systemd
// and docker stop send SIGTERM; treating it like SIGINT is what makes
// the daemon's epoch-boundary shutdown reachable in production — see
// docs/OPERATIONS.md). A second signal aborts immediately via context
// cancellation. The process exits 0 iff every started epoch was
// verified (or recovered already-verified) and shut down cleanly.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"vpm/internal/core"
	"vpm/internal/experiments"
	"vpm/internal/segstore"
	"vpm/internal/seqdetect"
)

// BootError wraps a failure to establish the durable store at boot.
// It exists so "the node lost or cannot trust its evidence" is a
// distinct, testable failure mode (exit code 3) rather than a generic
// crash: an operator seeing exit 3 knows the data directory needs
// attention and that the process refused to start with silently empty
// history.
type BootError struct {
	Err error
}

// Error implements error.
func (e *BootError) Error() string { return "durable store boot failure: " + e.Err.Error() }

// Unwrap exposes the underlying store error (segstore.ErrCorruptManifest,
// segstore.ErrSegmentIntegrity, ...).
func (e *BootError) Unwrap() error { return e.Err }

// bootExitCode is the exit status for BootError — distinct from 1
// (runtime failure) so supervisors can tell "fix the data dir" from
// "the run failed".
const bootExitCode = 3

func main() {
	var (
		epochs    = flag.Int("epochs", 8, "number of epochs to run")
		interval  = flag.Duration("interval", 250*time.Millisecond, "epoch length (simulated time)")
		rate      = flag.Float64("rate", 50000, "foreground packet rate (packets/second)")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		retention = flag.Int("retention", 2, "verified epochs kept in RAM before eviction")
		shards    = flag.Int("shards", 1, "collector shards per HOP (0 = GOMAXPROCS)")
		workers   = flag.Int("workers", 1, "verifier worker-pool size (0 = GOMAXPROCS)")
		jsonOut   = flag.Bool("json", false, "emit a JSON summary instead of text")
		quiet     = flag.Bool("quiet", false, "suppress per-epoch lines")
		dataDir   = flag.String("data-dir", "", "durable store directory (empty: RAM only)")
		diskRet   = flag.Int("disk-retention", 0, "sealed epochs kept on disk (0 = unbounded; needs -data-dir)")
		httpAddr  = flag.String("http", "", "serve the historical-verdict query API on this address (needs -data-dir)")
		serveOnly = flag.Bool("serve-only", false, "serve an existing store's query API without running the pipeline")
		pace      = flag.Bool("pace", false, "pace epochs in real time (one per -interval of wall clock)")
		seq       = flag.Bool("sequential", false, "arm the concurrent SPRT arm: early sequential verdicts logged per epoch")
	)
	flag.Parse()

	// First SIGINT/SIGTERM: finish the epoch in flight, verify it,
	// summarize, exit 0. A second signal cancels the context, which
	// aborts the collection loop mid-epoch (exit non-zero) — the
	// escape hatch when a clean boundary never comes.
	stop := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "vpm-node: signal — stopping at the next epoch boundary")
		close(stop)
		<-sigs
		fmt.Fprintln(os.Stderr, "vpm-node: second signal — aborting")
		cancel()
	}()

	// Durable store boot (recovery included).
	var store *segstore.Store
	if *dataDir != "" {
		s, stats, err := segstore.Open(*dataDir, segstore.Options{
			DiskRetention: *diskRet,
			AutoCompact:   true,
		})
		if err != nil {
			fatalBoot(&BootError{Err: err})
		}
		store = s
		defer store.Close()
		fmt.Fprintf(os.Stderr, "vpm-node: %s: %s\n", *dataDir, stats)
	} else if *diskRet != 0 || *httpAddr != "" || *serveOnly {
		fatal(errors.New("-disk-retention, -http and -serve-only need -data-dir"))
	}

	// Query API server, alongside the run or standalone (-serve-only).
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatal(fmt.Errorf("query API listen: %w", err))
		}
		srv := &http.Server{
			Handler:           segstore.NewHandler(store, segstore.APIConfig{IntervalNS: interval.Nanoseconds()}),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go srv.Serve(ln)
		// Bounded drain: a peer that opened a connection but never sent
		// a request must not block exit (Shutdown with a background
		// context waits for it indefinitely).
		defer func() {
			sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer scancel()
			if err := srv.Shutdown(sctx); err != nil {
				srv.Close()
			}
		}()
		fmt.Fprintf(os.Stderr, "vpm-node: query API on http://%s\n", ln.Addr())
	}
	if *serveOnly {
		if *httpAddr == "" {
			fatal(errors.New("-serve-only without -http serves nothing"))
		}
		fmt.Fprintln(os.Stderr, "vpm-node: serve-only — signal to exit")
		<-stop
		fmt.Fprintln(os.Stderr, "vpm-node: clean shutdown")
		return
	}

	cfg := experiments.Config{Seed: *seed, RatePPS: *rate, DurationNS: interval.Nanoseconds()}
	ec := core.EpochConfig{
		IntervalNS: interval.Nanoseconds(),
		Retention:  *retention,
		Workers:    *workers,
		Shards:     *shards,
	}
	if err := ec.Validate(); err != nil {
		fatal(err)
	}

	var seqVerdicts atomic.Int64
	onEpoch := func(rep core.EpochReport, ws core.WindowStats) {
		seqVerdicts.Add(int64(len(rep.Seq)))
		if *quiet || *jsonOut {
			return
		}
		fmt.Printf("epoch %3d: keys=%d matched=%d violations=%d window=%d segs (%d gced)",
			rep.Epoch, len(rep.Keys), rep.MatchedSamples(), rep.Violations(), ws.Segments, ws.Evicted)
		for _, k := range rep.Keys {
			for _, dom := range k.Domains {
				if len(dom.DelayEstimates) > 0 {
					fmt.Printf("  %s: loss=%.3f%% p50=%.2fms",
						dom.Name, dom.Loss.Rate()*100, dom.DelayEstimates[0].Point/1e6)
					break // one headline domain per line keeps it readable
				}
			}
			break
		}
		fmt.Println()
		// Early sequential verdicts land in the epoch whose seal
		// crossed the SPRT threshold — often a fraction of an epoch
		// after the lie started, and before any batch judgment.
		for _, v := range rep.Seq {
			where := fmt.Sprintf("link %d->%d", v.Up, v.Down)
			if v.Domain != "" {
				where = "domain " + v.Domain
			}
			fmt.Printf("epoch %3d: SEQ VERDICT %s on %s key=%s at %.2f epochs (stat %.1f, n=%d, α=%.0e β=%.0e)\n",
				rep.Epoch, v.Class, where, v.Key, v.EpochsToVerdict(), v.Stat, v.N, v.Alpha, v.Beta)
		}
	}

	opts := experiments.ContinuousOptions{
		OnEpoch: onEpoch,
		Stop:    stop,
		Ctx:     ctx,
	}
	if store != nil {
		opts.Backend = segstore.Backend{Store: store}
	}
	if *pace {
		opts.Pace = *interval
	}
	if *seq {
		sc := seqdetect.DefaultConfig()
		opts.Sequential = &sc
	}

	start := time.Now()
	res, err := experiments.RunContinuousOpts(cfg, ec, *epochs, opts)
	if err != nil {
		fatal(err)
	}
	wall := time.Since(start)

	if len(res.Reports)+res.RecoveredEpochs != res.EpochsSealed {
		// Every sealed epoch — each simulated interval plus the
		// terminal spill — must have been verified before shutdown,
		// or recovered already-verified from the durable store.
		fatal(fmt.Errorf("sealed %d epochs but verified %d and recovered %d",
			res.EpochsSealed, len(res.Reports), res.RecoveredEpochs))
	}

	if *jsonOut {
		// EpochsRow keeps the vpm-bench -run epochs schema (BENCH_*.json)
		// so the two outputs cannot drift apart; the durable-store fields
		// ride alongside.
		row := experiments.EpochsRow{
			Mode:           "continuous",
			Epochs:         res.EpochsRun,
			IntervalMS:     float64(interval.Nanoseconds()) / 1e6,
			Retention:      *retention,
			Packets:        res.Packets,
			SampleReceipts: res.SampleReceipts,
			AggReceipts:    res.AggReceipts,
			MatchedSamples: res.MatchedSamples,
			Violations:     res.Violations,
			WallMS:         float64(wall.Nanoseconds()) / 1e6,
			EpochsPerSec:   float64(res.EpochsRun) / wall.Seconds(),
			HeapMB:         float64(res.HeapAllocBytes) / (1 << 20),
			SegmentsHeld:   res.Window.Segments,
			SegmentsGCed:   res.Window.Evicted,
		}
		var sum, max time.Duration
		for _, d := range res.EpochWall {
			sum += d
			if d > max {
				max = d
			}
		}
		if n := len(res.EpochWall); n > 0 {
			row.MeanEpochMS = float64(sum.Nanoseconds()) / float64(n) / 1e6
			row.MaxEpochMS = float64(max.Nanoseconds()) / 1e6
		}
		out := struct {
			experiments.EpochsRow
			RecoveredEpochs int             `json:"recovered_epochs"`
			SeqVerdicts     int64           `json:"seq_verdicts,omitempty"`
			Store           *segstore.Stats `json:"store,omitempty"`
		}{EpochsRow: row, RecoveredEpochs: res.RecoveredEpochs, SeqVerdicts: seqVerdicts.Load()}
		if store != nil {
			st := store.StoreStats()
			out.Store = &st
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("vpm-node: %d epochs (%v each) over %d packets in %v — %.1f epochs/s sustained\n",
		res.EpochsRun, *interval, res.Packets, wall.Round(time.Millisecond),
		float64(res.EpochsRun)/wall.Seconds())
	fmt.Printf("vpm-node: %d sample + %d aggregate receipts, %d matched samples, %d violations\n",
		res.SampleReceipts, res.AggReceipts, res.MatchedSamples, res.Violations)
	fmt.Printf("vpm-node: window holds %d segments (%d evicted), steady-state heap %.1f MB\n",
		res.Window.Segments, res.Window.Evicted, float64(res.HeapAllocBytes)/(1<<20))
	if store != nil {
		st := store.StoreStats()
		fmt.Printf("vpm-node: durable store holds %d sealed epochs in %d segments (%d reports, %.1f KB), %d recovered\n",
			st.SealedEpochs, st.Segments, st.Reports, float64(st.Bytes)/(1<<10), res.RecoveredEpochs)
	}
	fmt.Println("vpm-node: clean shutdown")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vpm-node:", err)
	os.Exit(1)
}

// fatalBoot reports a BootError and exits with the boot-failure code.
func fatalBoot(err *BootError) {
	fmt.Fprintln(os.Stderr, "vpm-node:", err)
	os.Exit(bootExitCode)
}
