package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestSIGTERMCleanShutdown is the regression test for the daemon dying
// mid-epoch under systemd/docker stop: SIGTERM (not just SIGINT) must
// take the clean epoch-boundary shutdown path — finish the epoch in
// flight, verify every sealed epoch, and exit 0.
func TestSIGTERMCleanShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the vpm-node binary")
	}
	bin := filepath.Join(t.TempDir(), "vpm-node")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	// Enough epochs that the run is guaranteed to still be in flight
	// when the signal lands.
	cmd := exec.Command(bin, "-epochs", "100000", "-interval", "50ms", "-rate", "20000", "-quiet")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()

	time.Sleep(400 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("vpm-node exited non-zero after SIGTERM: %v\nstdout:\n%s\nstderr:\n%s",
				err, stdout.String(), stderr.String())
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("vpm-node did not shut down within 30s of SIGTERM\nstderr:\n%s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "clean shutdown") {
		t.Fatalf("no clean-shutdown line after SIGTERM:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "stopping at the next epoch boundary") {
		t.Fatalf("signal handler did not announce the boundary stop:\n%s", stderr.String())
	}
}
