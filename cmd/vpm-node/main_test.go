package main

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"vpm/internal/segstore"
)

// lockedBuffer is safe to read while the child process writes to it.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// buildNode compiles the vpm-node binary into a temp dir.
func buildNode(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vpm-node")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

// TestSIGTERMCleanShutdown is the regression test for the daemon dying
// mid-epoch under systemd/docker stop: SIGTERM (not just SIGINT) must
// take the clean epoch-boundary shutdown path — finish the epoch in
// flight, verify every sealed epoch, and exit 0.
func TestSIGTERMCleanShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the vpm-node binary")
	}
	bin := buildNode(t)

	// Enough epochs that the run is guaranteed to still be in flight
	// when the signal lands. Per-epoch output stays on (no -quiet): the
	// first "epoch" line is the readiness signal that the handler is
	// installed and the run is mid-flight, so the test never races the
	// process's startup the way a fixed wall-clock sleep would under a
	// loaded CI machine.
	cmd := exec.Command(bin, "-epochs", "100000", "-interval", "50ms", "-rate", "20000")
	stdout, stderr := &lockedBuffer{}, &lockedBuffer{}
	cmd.Stdout, cmd.Stderr = stdout, stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()

	ready := time.Now().Add(30 * time.Second)
	for !strings.Contains(stdout.String(), "epoch ") {
		if time.Now().After(ready) {
			cmd.Process.Kill()
			t.Fatalf("vpm-node never sealed an epoch within 30s\nstdout:\n%s\nstderr:\n%s",
				stdout.String(), stderr.String())
		}
		select {
		case err := <-done:
			t.Fatalf("vpm-node exited before the first epoch: %v\nstderr:\n%s", err, stderr.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("vpm-node exited non-zero after SIGTERM: %v\nstdout:\n%s\nstderr:\n%s",
				err, stdout.String(), stderr.String())
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("vpm-node did not shut down within 30s of SIGTERM\nstderr:\n%s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "clean shutdown") {
		t.Fatalf("no clean-shutdown line after SIGTERM:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "stopping at the next epoch boundary") {
		t.Fatalf("signal handler did not announce the boundary stop:\n%s", stderr.String())
	}
}

// TestBootErrorWrapsStoreErrors pins the typed failure path itself: a
// BootError unwraps to the segstore error that caused it, so callers
// (and the exit-code test below) can tell corruption from misuse.
func TestBootErrorWrapsStoreErrors(t *testing.T) {
	err := &BootError{Err: segstore.ErrCorruptManifest}
	if !errors.Is(err, segstore.ErrCorruptManifest) {
		t.Fatal("BootError does not unwrap to its cause")
	}
	//lint:ignore errwrap the boot prefix in the operator-facing message is itself the contract under test
	if !strings.Contains(err.Error(), "durable store boot failure") {
		t.Fatalf("BootError message %q lacks the boot prefix", err.Error())
	}
}

// TestCorruptStoreRefusesBoot is the operator-facing contract: a node
// pointed at a data directory it cannot trust must refuse to start with
// the dedicated boot exit code (3) rather than run with silently empty
// history (or crash with a generic 1).
func TestCorruptStoreRefusesBoot(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the vpm-node binary")
	}
	bin := buildNode(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), []byte("not a manifest"), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, "-epochs", "1", "-interval", "50ms", "-data-dir", dir)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	var exit *exec.ExitError
	if !errors.As(err, &exit) {
		t.Fatalf("corrupt store: err = %v, want non-zero exit\nstderr:\n%s", err, stderr.String())
	}
	if code := exit.ExitCode(); code != bootExitCode {
		t.Fatalf("corrupt store: exit code %d, want %d\nstderr:\n%s", code, bootExitCode, stderr.String())
	}
	if !strings.Contains(stderr.String(), "durable store boot failure") {
		t.Fatalf("stderr does not name the boot failure:\n%s", stderr.String())
	}
}

// TestDiskFlagsRequireDataDir: the durable-store companion flags are
// meaningless without a store, and silently ignoring them would hide
// operator typos.
func TestDiskFlagsRequireDataDir(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the vpm-node binary")
	}
	bin := buildNode(t)
	for _, args := range [][]string{
		{"-http", "127.0.0.1:0"},
		{"-disk-retention", "4"},
		{"-serve-only"},
	} {
		cmd := exec.Command(bin, append([]string{"-epochs", "1"}, args...)...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		err := cmd.Run()
		var exit *exec.ExitError
		if !errors.As(err, &exit) || exit.ExitCode() != 1 {
			t.Fatalf("%v without -data-dir: err = %v, want exit 1\nstderr:\n%s", args, err, stderr.String())
		}
		if !strings.Contains(stderr.String(), "need -data-dir") {
			t.Fatalf("%v: stderr does not explain the missing -data-dir:\n%s", args, stderr.String())
		}
	}
}
