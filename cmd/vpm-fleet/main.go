// Command vpm-fleet runs the measurement pipeline as a multi-process
// fleet: per-domain collector processes stream sealed, signed epoch
// bundles over HTTP to a sharded verifier tier that consistent-hashes
// traffic keys across N verifier processes, and a merge step
// recombines the shards' partial verdicts into union epoch reports
// byte-identical to a single process's at any shard count.
//
// Subcommands:
//
//	vpm-fleet collect -spec JSON -index I [-addr 127.0.0.1:0] [-pace D]
//	    One collector process: simulates the shared world, drives the
//	    epoch pipeline for the HOPs of its domain slice, serves signed
//	    bundles (GET /hops, /hop/{id}/receipts, /status). Announces
//	    "serving on http://..." on stderr; keeps serving after the
//	    simulation finishes until SIGINT/SIGTERM.
//
//	vpm-fleet verify -spec JSON -shards N -shard I -collectors URLS -out F
//	    One verifier shard: fetches every collector's bundles with
//	    bounded retry, verifies its key slice, writes its part file
//	    atomically, exits.
//
//	vpm-fleet run -spec JSON [-verifiers 1,2,4] [-check] [-json] [-dir D]
//	    Local supervisor harness: spawns the collector processes and,
//	    for each requested tier width, a verifier tier (reusing the
//	    same collector set — feeds are retained and re-fetchable);
//	    merges each tier's parts and reports the verdict fingerprint
//	    per width. -check additionally runs the single-process
//	    reference in-process and fails unless every width's merged
//	    verdicts are byte-identical to it.
//
// Every process derives the world from the same -spec JSON (see
// fleet.Spec): there is no state to distribute, only a seed to agree
// on.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"vpm/internal/dissem"
	"vpm/internal/fleet"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "collect":
		runCollect(os.Args[2:])
	case "verify":
		runVerify(os.Args[2:])
	case "run":
		runSupervisor(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: vpm-fleet {collect|verify|run} [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vpm-fleet:", err)
	os.Exit(1)
}

// defaultSpec is the demo world `run` uses when -spec is omitted.
func defaultSpec() fleet.Spec {
	return fleet.Spec{
		Seed:       1,
		Domains:    12,
		ExtraLinks: 8,
		Keys:       256,
		Epochs:     4,
		IntervalNS: 100_000_000,
		RatePPS:    100_000,
		Collectors: 2,
		Workers:    0,
	}
}

func parseSpecFlag(text string) fleet.Spec {
	if text == "" {
		return defaultSpec()
	}
	s, err := fleet.ParseSpec(text)
	if err != nil {
		fatal(err)
	}
	return s
}

func runCollect(args []string) {
	fs := flag.NewFlagSet("collect", flag.ExitOnError)
	specText := fs.String("spec", "", "fleet spec JSON (empty: demo spec)")
	index := fs.Int("index", 0, "collector index in [0, spec.collectors)")
	addr := fs.String("addr", "127.0.0.1:0", "listen address")
	pace := fs.Duration("pace", 0, "real-time sleep between simulation segments")
	chunk := fs.Int64("chunk", 0, "packet slots per simulation segment (0: default)")
	fs.Parse(args)

	spec := parseSpecFlag(*specText)
	w, err := spec.Build()
	if err != nil {
		fatal(err)
	}
	c, err := fleet.NewCollector(w, *index)
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// The same lifecycle conventions as the other daemons: header and
	// read timeouts so a stalled peer cannot pin a connection open
	// forever, SIGINT/SIGTERM drains in-flight requests with a bounded
	// deadline, and a serve error is a nonzero exit.
	srv := &http.Server{
		Handler:           c.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "vpm-fleet: collector %d serving on http://%s (%d HOPs)\n",
		*index, ln.Addr(), len(c.Owned()))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		cancel()
	}()

	if err := c.Run(ctx, fleet.CollectorOptions{ChunkSlots: *chunk, Pace: *pace}); err != nil {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "vpm-fleet: collector interrupted before finishing")
			os.Exit(1)
		}
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "vpm-fleet: collector %d finished (terminal epoch %d) — serving until signal\n",
		*index, w.Terminal)

	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fatal(fmt.Errorf("serve: %w", err))
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "vpm-fleet: drain deadline exceeded — closing")
		srv.Close()
	}
	fmt.Fprintln(os.Stderr, "vpm-fleet: collector clean shutdown")
}

func runVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	specText := fs.String("spec", "", "fleet spec JSON (empty: demo spec)")
	shards := fs.Int("shards", 1, "verifier tier width")
	shard := fs.Int("shard", 0, "this shard's index")
	collectors := fs.String("collectors", "", "comma-separated collector base URLs")
	out := fs.String("out", "", "part file path (empty: stdout)")
	workers := fs.Int("workers", -1, "verifier worker-pool override (-1: use spec)")
	fs.Parse(args)

	spec := parseSpecFlag(*specText)
	if *workers >= 0 {
		spec.Workers = *workers
	}
	w, err := spec.Build()
	if err != nil {
		fatal(err)
	}
	urls := strings.Split(*collectors, ",")
	if *collectors == "" {
		fatal(fmt.Errorf("verify needs -collectors"))
	}
	v, err := fleet.NewVerifier(w, *shards, *shard, fleet.VerifierOptions{})
	if err != nil {
		fatal(err)
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	reports, err := v.Run(ctx, urls, fleet.VerifierOptions{Retry: dissem.DefaultRetryPolicy})
	if err != nil {
		fatal(err)
	}
	part, err := fleet.NewShardOutput(*shards, *shard, reports)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		enc, err := json.Marshal(part)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(append(enc, '\n'))
	} else if err := part.WriteFile(*out); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "vpm-fleet: shard %d/%d verified %d epochs\n", *shard, *shards, len(reports))
}

// servingRE scrapes a collector child's announced address.
var servingRE = regexp.MustCompile(`serving on (http://[^\s]+)`)

// collectorProc is one spawned collector child.
type collectorProc struct {
	cmd *exec.Cmd
	url string
}

// startCollectors spawns one collector child per spec slot and waits
// for each to announce its address.
func startCollectors(self string, spec fleet.Spec, pace time.Duration) ([]*collectorProc, error) {
	procs := make([]*collectorProc, spec.Collectors)
	for i := range procs {
		args := []string{"collect", "-spec", spec.Encode(), "-index", strconv.Itoa(i), "-addr", "127.0.0.1:0"}
		if pace > 0 {
			args = append(args, "-pace", pace.String())
		}
		cmd := exec.Command(self, args...)
		stderr, err := cmd.StderrPipe()
		if err != nil {
			return procs, err
		}
		cmd.Stdout = os.Stdout
		if err := cmd.Start(); err != nil {
			return procs, err
		}
		procs[i] = &collectorProc{cmd: cmd}
		urlCh := make(chan string, 1)
		go func() {
			sc := bufio.NewScanner(stderr)
			for sc.Scan() {
				line := sc.Text()
				if m := servingRE.FindStringSubmatch(line); m != nil {
					select {
					case urlCh <- m[1]:
					default:
					}
				}
				fmt.Fprintln(os.Stderr, line)
			}
		}()
		select {
		case procs[i].url = <-urlCh:
		case <-time.After(30 * time.Second):
			return procs, fmt.Errorf("collector %d never announced its address", i)
		}
	}
	return procs, nil
}

// waitFinished polls every collector's /status until the simulation is
// done, so verifier-tier timings measure verification, not collection.
func waitFinished(procs []*collectorProc, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, p := range procs {
		for {
			var st fleet.CollectorStatus
			resp, err := http.Get(p.url + "/status")
			if err == nil {
				err = json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
			}
			if err == nil && st.Finished {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("collector %s not finished after %v", p.url, timeout)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	return nil
}

func runSupervisor(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	specText := fs.String("spec", "", "fleet spec JSON (empty: demo spec)")
	verifiers := fs.String("verifiers", "1,2,4", "comma-separated verifier tier widths to sweep")
	check := fs.Bool("check", false, "also run the single-process reference and require byte-identical merges")
	jsonOut := fs.Bool("json", false, "emit JSON rows instead of text")
	dir := fs.String("dir", "", "working directory for part files (empty: temp)")
	pace := fs.Duration("pace", 0, "collector pacing (for lifecycle testing)")
	collectTimeout := fs.Duration("collect-timeout", 2*time.Hour, "how long to wait for the collectors to finish simulating")
	fs.Parse(args)

	spec := parseSpecFlag(*specText)
	self, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	workDir := *dir
	if workDir == "" {
		workDir, err = os.MkdirTemp("", "vpm-fleet-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(workDir)
	}

	var widths []int
	for _, t := range strings.Split(*verifiers, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(t))
		if err != nil || n < 1 {
			fatal(fmt.Errorf("bad -verifiers entry %q", t))
		}
		widths = append(widths, n)
	}

	procs, err := startCollectors(self, spec, *pace)
	stopCollectors := func() {
		for _, p := range procs {
			if p != nil && p.cmd.Process != nil {
				p.cmd.Process.Signal(syscall.SIGTERM)
			}
		}
		for _, p := range procs {
			if p != nil && p.cmd.Process != nil {
				p.cmd.Wait()
			}
		}
	}
	defer stopCollectors()
	if err != nil {
		fatal(err)
	}
	if err := waitFinished(procs, *collectTimeout); err != nil {
		fatal(err)
	}
	urls := make([]string, len(procs))
	for i, p := range procs {
		urls[i] = p.url
	}

	// Optional in-process reference, computed once.
	var refEnc []json.RawMessage
	if *check {
		refW, err := spec.Build()
		if err != nil {
			fatal(err)
		}
		refReports, err := fleet.RunReference(refW, 0)
		if err != nil {
			fatal(err)
		}
		refEnc, err = fleet.EncodeReports(refReports)
		if err != nil {
			fatal(err)
		}
	}

	var rows []fleet.BenchRow
	for _, width := range widths {
		start := time.Now()
		parts := make([]*fleet.ShardOutput, width)
		errs := make([]error, width)
		var wg sync.WaitGroup
		for s := 0; s < width; s++ {
			partPath := filepath.Join(workDir, fmt.Sprintf("part-%d-of-%d.json", s, width))
			cmd := exec.Command(self, "verify",
				"-spec", spec.Encode(),
				"-shards", strconv.Itoa(width),
				"-shard", strconv.Itoa(s),
				"-collectors", strings.Join(urls, ","),
				"-out", partPath)
			cmd.Stderr = os.Stderr
			wg.Add(1)
			go func(s int, cmd *exec.Cmd, partPath string) {
				defer wg.Done()
				if err := cmd.Run(); err != nil {
					errs[s] = fmt.Errorf("verifier %d/%d: %w", s, width, err)
					return
				}
				parts[s], errs[s] = fleet.ReadShardFile(partPath)
			}(s, cmd, partPath)
		}
		wg.Wait()
		wall := time.Since(start)
		for _, err := range errs {
			if err != nil {
				fatal(err)
			}
		}
		merged, err := fleet.MergeShardOutputs(parts)
		if err != nil {
			fatal(err)
		}
		if refEnc != nil {
			if len(merged) != len(refEnc) {
				fatal(fmt.Errorf("width %d: merged %d epochs, reference has %d", width, len(merged), len(refEnc)))
			}
			for e := range merged {
				if !bytes.Equal(merged[e], refEnc[e]) {
					fatal(fmt.Errorf("width %d: epoch %d merged verdict diverges from single-process reference", width, e))
				}
			}
		}
		row := fleet.BenchRow{
			Procs:       width,
			Domains:     spec.Domains,
			Keys:        spec.Keys,
			Packets:     spec.TotalSlots(),
			Epochs:      spec.Epochs,
			WallMS:      float64(wall.Nanoseconds()) / 1e6,
			KeysPerSec:  float64(spec.Keys) * float64(len(merged)) / wall.Seconds(),
			Fingerprint: fleet.Fingerprint(merged),
		}
		rows = append(rows, row)
		if !*jsonOut {
			fmt.Printf("vpm-fleet: %d verifier(s): %d epochs merged in %v — %.0f keys/s, fingerprint %s\n",
				width, len(merged), wall.Round(time.Millisecond), row.KeysPerSec, row.Fingerprint)
		}
	}

	for _, r := range rows[1:] {
		if r.Fingerprint != rows[0].Fingerprint {
			fatal(fmt.Errorf("fingerprints diverge across tier widths: %s (procs=%d) vs %s (procs=%d)",
				rows[0].Fingerprint, rows[0].Procs, r.Fingerprint, r.Procs))
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			fatal(err)
		}
	} else if *check {
		fmt.Println("vpm-fleet: all tier widths byte-identical to the single-process reference")
	}
}
