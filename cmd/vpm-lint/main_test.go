package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTreeIsClean is the self-check CI's lint job enforces: running
// every registered analyzer over the whole module must produce zero
// live findings. Suppressions need a justified //lint:ignore, which
// keeps the waiver trail reviewable in the diff.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module including stdlib deps")
	}
	chdirRepoRoot(t)
	var out, errOut bytes.Buffer
	code := run([]string{"./..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("vpm-lint exit %d on the tree\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "0 findings") {
		t.Fatalf("unexpected summary:\n%s", out.String())
	}
}

// TestSeededViolationFails drives the binary over a fixture tree and
// pins the contract the CI job depends on: live findings exit 1 and
// print position plus fix hint, and the SARIF artifact carries them.
func TestSeededViolationFails(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a scratch module against the stdlib")
	}
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "core", "core.go"), `package core

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`)
	t.Chdir(dir)

	sarif := filepath.Join(dir, "findings.sarif")
	var out, errOut bytes.Buffer
	code := run([]string{"-sarif", sarif, "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 for a live finding\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	text := out.String()
	for _, want := range []string{
		"core/core.go:5:",
		"[determinism]",
		"time.Now",
		"fix: take timestamps from the observation stream",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output lacks %q:\n%s", want, text)
		}
	}

	data, err := os.ReadFile(sarif)
	if err != nil {
		t.Fatalf("sarif artifact: %v", err)
	}
	var doc struct {
		Runs []struct {
			Results []struct {
				RuleID string `json:"ruleId"`
				Level  string `json:"level"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("sarif is not valid JSON: %v", err)
	}
	if len(doc.Runs) != 1 || len(doc.Runs[0].Results) == 0 {
		t.Fatalf("sarif has no results: %s", data)
	}
	r := doc.Runs[0].Results[0]
	if r.RuleID != "determinism" || r.Level != "error" {
		t.Errorf("sarif result = %+v, want determinism/error", r)
	}
}

// TestListFlag pins the -list output the README quickstart shows.
func TestListFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exit %d: %s", code, errOut.String())
	}
	for _, name := range []string{"determinism", "hotpath", "fsyncdiscipline", "errwrap"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output lacks %q:\n%s", name, out.String())
		}
	}
}

func chdirRepoRoot(t *testing.T) {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			t.Chdir(dir)
			return
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test binary")
		}
		dir = parent
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
