// Command vpm-lint runs the repository's verifiability analyzers — a
// multichecker in the mold of go vet, built on internal/analysis so it
// needs nothing outside the standard library. It type-checks the
// named packages (tests included) and applies every registered pass:
//
//	determinism     map order / wall clock / global RNG leaks in
//	                replay-deterministic packages
//	hotpath         allocation idioms reachable from //vpm:hotpath
//	fsyncdiscipline segstore's write-temp → fsync → rename → fsync-dir
//	                commit sequence
//	errwrap         errors.Is/As discipline for typed sentinels
//
// Usage:
//
//	go tool vpm-lint [flags] [./...]
//
// Exit status: 0 when the tree is clean (suppressed findings with
// justified //lint:ignore directives do not fail the run), 1 when any
// live finding is reported, 2 on load/usage errors. Each finding
// prints position, analyzer, message and a fix hint:
//
//	store.go:507:12: [fsyncdiscipline] Rename without a preceding
//	file Sync: ... (fix: commit via write-temp → Sync → Rename → SyncDir)
//
// CI runs vpm-lint as the blocking lint job and uploads its -sarif
// output so findings annotate pull requests.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"vpm/internal/analysis"
	"vpm/internal/analysis/loader"
	"vpm/internal/analysis/registry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and status, for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vpm-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut   = fs.Bool("json", false, "emit findings as JSON")
		sarifPath = fs.String("sarif", "", "write findings as SARIF 2.1.0 to `file`")
		list      = fs.Bool("list", false, "list registered analyzers and exit")
		noTests   = fs.Bool("notests", false, "skip _test.go files")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := registry.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root, modPath, err := findModule()
	if err != nil {
		fmt.Fprintln(stderr, "vpm-lint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(&loader.Config{Dir: root, ModulePath: modPath, Tests: !*noTests}, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "vpm-lint:", err)
		return 2
	}
	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "vpm-lint:", err)
		return 2
	}

	if *sarifPath != "" {
		data, err := analysis.EncodeSARIF(findings, analyzers, root)
		if err != nil {
			fmt.Fprintln(stderr, "vpm-lint: sarif:", err)
			return 2
		}
		if err := os.WriteFile(*sarifPath, data, 0o644); err != nil {
			fmt.Fprintln(stderr, "vpm-lint: sarif:", err)
			return 2
		}
	}

	live := 0
	for _, f := range findings {
		if !f.Suppressed {
			live++
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "vpm-lint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			rel := f
			if r, err := filepath.Rel(root, f.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
				rel.Pos.Filename = r
			}
			fmt.Fprintln(stdout, rel.String())
		}
		fmt.Fprintf(stdout, "vpm-lint: %d packages, %d findings (%d suppressed)\n",
			len(pkgs), live, len(findings)-live)
	}
	if live > 0 {
		return 1
	}
	return 0
}

// findModule walks up from the working directory to go.mod and
// returns the module root and path.
func findModule() (root, path string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
