// Command vpm-trace generates and inspects synthetic packet traces
// (the CAIDA substitute documented in DESIGN.md).
//
// Usage:
//
//	vpm-trace gen  -o trace.vpmtrc [-rate 100000] [-duration 1s] [-paths 1] [-seed 1]
//	vpm-trace info -i trace.vpmtrc
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vpm/internal/packet"
	"vpm/internal/stats"
	"vpm/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "info":
		info(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: vpm-trace gen|info [flags]")
	os.Exit(2)
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	var (
		out      = fs.String("o", "trace.vpmtrc", "output file")
		rate     = fs.Float64("rate", 100000, "packets/second per path")
		duration = fs.Duration("duration", time.Second, "trace duration")
		paths    = fs.Int("paths", 1, "number of origin-prefix paths")
		seed     = fs.Uint64("seed", 1, "generator seed")
	)
	fs.Parse(args)

	cfg := trace.Config{Seed: *seed, DurationNS: duration.Nanoseconds()}
	for i := 0; i < *paths; i++ {
		spec := trace.DefaultPath(*rate)
		spec.SrcPrefix = packet.MakePrefix(10, byte(1+i), 0, 0, 16)
		spec.DstPrefix = packet.MakePrefix(172, byte(16+i), 0, 0, 16)
		cfg.Paths = append(cfg.Paths, spec)
	}
	pkts, err := trace.Generate(cfg)
	check(err)
	f, err := os.Create(*out)
	check(err)
	defer f.Close()
	check(trace.Write(f, pkts))
	fmt.Printf("wrote %d packets (%d paths, %v) to %s\n", len(pkts), *paths, *duration, *out)
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("i", "trace.vpmtrc", "input file")
	fs.Parse(args)

	f, err := os.Open(*in)
	check(err)
	defer f.Close()
	pkts, err := trace.Read(f)
	check(err)
	if len(pkts) == 0 {
		fmt.Println("empty trace")
		return
	}
	sizes := make([]float64, len(pkts))
	tcp := 0
	pathSet := map[packet.PathKey]int{}
	for i := range pkts {
		sizes[i] = float64(pkts[i].TotalLen)
		if pkts[i].Proto == packet.ProtoTCP {
			tcp++
		}
		key := packet.PathKey{
			Src: packet.MakePrefix(pkts[i].Src[0], pkts[i].Src[1], 0, 0, 16),
			Dst: packet.MakePrefix(pkts[i].Dst[0], pkts[i].Dst[1], 0, 0, 16),
		}
		pathSet[key]++
	}
	dur := time.Duration(pkts[len(pkts)-1].SentAt - pkts[0].SentAt)
	s := stats.Summarize(sizes)
	fmt.Printf("packets:   %d over %v (%.0f pkt/s)\n", len(pkts), dur.Round(time.Millisecond),
		float64(len(pkts))/dur.Seconds())
	fmt.Printf("sizes:     mean %.0fB p50 %.0fB p99 %.0fB\n", s.Mean, s.P50, s.P99)
	fmt.Printf("protocols: %.1f%% TCP, %.1f%% UDP\n",
		float64(tcp)/float64(len(pkts))*100, float64(len(pkts)-tcp)/float64(len(pkts))*100)
	fmt.Printf("paths (/16 pairs): %d\n", len(pathSet))
	for key, n := range pathSet {
		fmt.Printf("  %v: %d packets\n", key, n)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpm-trace:", err)
		os.Exit(1)
	}
}
