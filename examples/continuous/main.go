// Continuous multi-interval operation: the Figure 1 deployment run as
// a stream of rotating epochs instead of a one-shot batch.
//
// Each iteration generates one epoch's worth of traffic and drives it
// across the path (network state persists between segments via the
// SimRunner). Every HOP's collector sits behind an epoch clock that
// rotates when the HOP's local observation time crosses an interval
// boundary, sealing that epoch's receipts into a WindowedStore — one
// receipt-store segment per epoch. A RollingVerifier verifies each
// epoch as soon as every HOP has sealed it and the window evicts
// verified epochs older than the retention, so memory stays bounded
// no matter how long the node runs. Rotation repackages the receipt
// stream without changing it: an aggregate straddling a boundary keeps
// counting and lands in the epoch where it closes.
package main

import (
	"fmt"
	"log"

	"vpm"
)

func main() {
	const (
		epochs     = 8
		intervalNS = 100_000_000 // 100 ms epochs
		ratePPS    = 20000
		retention  = 2
		seed       = 7
	)

	// Traffic source: a pull-based generator sliced at epoch
	// boundaries, so only one interval's packets are in memory at once.
	tc := vpm.TraceConfig{
		Seed:       seed,
		DurationNS: epochs * intervalNS,
		Paths:      []vpm.TracePathSpec{vpm.DefaultTracePath(ratePPS)},
	}
	gen, err := vpm.NewTraceGenerator(tc)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's Figure 1 path with a full deployment on every HOP.
	path := vpm.Fig1Path(seed + 1)
	dep, err := vpm.NewDeployment(path, tc.Table(), vpm.DefaultDeployConfig())
	if err != nil {
		log.Fatal(err)
	}

	var hops []vpm.HOPID
	for id := range dep.Collectors {
		hops = append(hops, id)
	}
	win, err := vpm.NewWindowedStore(hops, retention)
	if err != nil {
		log.Fatal(err)
	}

	// Sealed epochs flow straight into the windowed store. (vpm-node
	// interposes signed epoch-tagged dissemination bundles here.)
	driver, err := vpm.NewEpochDriver(dep, intervalNS, win.Sink())
	if err != nil {
		log.Fatal(err)
	}

	rolling := vpm.NewRollingVerifier(dep.Layout(), dep.VerifierConfig(), win, vpm.DefaultQuantiles, 0.95)

	runner, err := vpm.NewSimRunner(path)
	if err != nil {
		log.Fatal(err)
	}
	for e := int64(1); e <= epochs; e++ {
		// The horizon tells the runner no future packet is sent before
		// it, so boundary observations are withheld and merged into the
		// next segment in global arrival order.
		chunk := gen.NextChunk(e * intervalNS)
		if _, err := runner.RunSegment(chunk, driver.Observers(), e*intervalNS); err != nil {
			log.Fatal(err)
		}
		report(rolling, win)
	}
	if _, err := runner.Run(nil, driver.Observers()); err != nil {
		log.Fatal(err) // deliver the observations withheld at the last boundary
	}
	driver.Close()     // seal the terminal epochs
	win.FinishStream() // release the final epoch for verification
	report(rolling, win)

	st := win.Stats()
	fmt.Printf("done: window holds %d segments (%d evicted) after %d epochs\n",
		st.Segments, st.Evicted, epochs)
}

// report verifies every epoch all HOPs have sealed, prints its delta,
// and lets the window GC what has aged out.
func report(rolling *vpm.RollingVerifier, win *vpm.WindowedStore) {
	reps, err := rolling.VerifyReady()
	if err != nil {
		log.Fatal(err)
	}
	for _, rep := range reps {
		fmt.Printf("epoch %d: matched=%d violations=%d", rep.Epoch, rep.MatchedSamples(), rep.Violations())
		for _, k := range rep.Keys {
			for _, dom := range k.Domains {
				if dom.Name == "X" && len(dom.DelayEstimates) > 0 {
					fmt.Printf("  X: loss=%.2f%% p50=%.2fms",
						dom.Loss.Rate()*100, dom.DelayEstimates[0].Point/1e6)
				}
			}
		}
		fmt.Println()
	}
	win.Evict()
}
