// SLA verification: the paper's motivating use case (§1).
//
// A customer domain has an SLA with transit provider X promising a
// 90th-percentile delay of at most 6 ms and a loss rate of at most 1%.
// The customer collects X's receipts (plus its neighbors', to verify
// them) and decides — with distribution-free confidence bounds —
// whether the SLA held. Two scenarios run back to back: a compliant X
// and a congested, lossy X.
//
// Run with: go run ./examples/sla-verification
package main

import (
	"fmt"
	"log"

	"vpm"
)

// The SLA under test.
const (
	slaQuantile   = 0.90
	slaDelayMS    = 6.0
	slaLossPct    = 1.0
	slaConfidence = 0.95
)

func main() {
	fmt.Printf("SLA: p%.0f delay <= %.1f ms, loss <= %.1f%% (verified at %.0f%% confidence)\n",
		slaQuantile*100, slaDelayMS, slaLossPct, slaConfidence*100)

	run("scenario 1: X healthy", false, 0)
	run("scenario 2: X congested and lossy", true, 0.08)
}

func run(title string, congested bool, lossRate float64) {
	fmt.Printf("\n=== %s ===\n", title)
	traceCfg := vpm.TraceConfig{
		Seed:       11,
		DurationNS: int64(1e9),
		Paths:      []vpm.TracePathSpec{vpm.DefaultTracePath(100000)},
	}
	pkts, err := vpm.GenerateTrace(traceCfg)
	if err != nil {
		log.Fatal(err)
	}
	key := vpm.PathKey{Src: traceCfg.Paths[0].SrcPrefix, Dst: traceCfg.Paths[0].DstPrefix}

	path := vpm.Fig1Path(23)
	xi := path.DomainIndex("X")
	if congested {
		queue, err := vpm.NewCongestionQueue(vpm.BurstyUDPScenario(9))
		if err != nil {
			log.Fatal(err)
		}
		path.Domains[xi].Delay = queue
	}
	if lossRate > 0 {
		loss, err := vpm.GilbertElliottLoss(lossRate, 8, 31)
		if err != nil {
			log.Fatal(err)
		}
		path.Domains[xi].Loss = loss
	}

	dep, err := vpm.NewDeployment(path, traceCfg.Table(), vpm.DefaultDeployConfig())
	if err != nil {
		log.Fatal(err)
	}
	truth, err := path.Run(pkts, dep.Observers())
	if err != nil {
		log.Fatal(err)
	}
	dep.Finalize()

	v := dep.NewVerifier(key)

	// First: are X's receipts even trustworthy? Check its links.
	for _, lv := range v.VerifyAllLinks() {
		if !lv.Consistent() {
			fmt.Printf("  WARNING: %v — receipts would be discarded\n", lv)
			return
		}
	}
	fmt.Println("  all inter-domain links consistent; receipts accepted")

	// Delay clause: estimate the SLA quantile with confidence bounds.
	rep, err := v.DomainReport("X", []float64{slaQuantile}, slaConfidence)
	if err != nil {
		log.Fatal(err)
	}
	est := rep.DelayEstimates[0]
	fmt.Printf("  p%.0f delay: %.2f ms  (%.0f%% CI [%.2f, %.2f] ms, n=%d)\n",
		slaQuantile*100, est.Point/1e6, slaConfidence*100, est.Lo/1e6, est.Hi/1e6, est.N)
	switch {
	case est.Lo/1e6 > slaDelayMS:
		fmt.Printf("  -> DELAY SLA VIOLATED with confidence: the entire CI exceeds %.1f ms\n", slaDelayMS)
	case est.Hi/1e6 <= slaDelayMS:
		fmt.Printf("  -> delay SLA met with confidence\n")
	default:
		fmt.Printf("  -> inconclusive at this sample size (CI straddles the bound)\n")
	}

	// Loss clause: aggregate counts are exact, no confidence needed.
	fmt.Printf("  loss: %.3f%% measured over %d joined aggregates\n",
		rep.Loss.Rate()*100, len(rep.Loss.Pairs))
	if rep.Loss.Rate()*100 > slaLossPct {
		fmt.Printf("  -> LOSS SLA VIOLATED (> %.1f%%)\n", slaLossPct)
	} else {
		fmt.Printf("  -> loss SLA met\n")
	}

	// Cross-check against simulation ground truth (a real customer
	// cannot see this; it is here to show the verdicts are earned).
	t, _ := truth.DomainByName("X")
	fmt.Printf("  [ground truth: loss %.3f%%]\n", t.LossRate()*100)
}
