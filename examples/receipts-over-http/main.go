// Receipts over HTTP: the dissemination layer (paper Assumption 2).
//
// Every HOP publishes its receipts as ed25519-signed bundles on a
// local HTTP server (the paper's "administrative web-site"
// realization). A verifier streams the bundles — each one is
// signature-checked as it comes off the wire and ingested into the
// verifier's indexed receipt store immediately, so no interval's
// receipts ever sit fully buffered — rejects a tampered server, and
// then runs the standard Figure 1 verification on the authenticated
// receipts.
//
// Run with: go run ./examples/receipts-over-http
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"vpm"
)

func main() {
	// 1. Simulate the Figure 1 world with a lossy X.
	traceCfg := vpm.TraceConfig{
		Seed:       51,
		DurationNS: int64(300e6),
		Paths:      []vpm.TracePathSpec{vpm.DefaultTracePath(100000)},
	}
	pkts, err := vpm.GenerateTrace(traceCfg)
	if err != nil {
		log.Fatal(err)
	}
	key := vpm.PathKey{Src: traceCfg.Paths[0].SrcPrefix, Dst: traceCfg.Paths[0].DstPrefix}
	path := vpm.Fig1Path(53)
	loss, err := vpm.GilbertElliottLoss(0.12, 8, 59)
	if err != nil {
		log.Fatal(err)
	}
	path.Domains[path.DomainIndex("X")].Loss = loss
	dep, err := vpm.NewDeployment(path, traceCfg.Table(), vpm.DefaultDeployConfig())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := path.Run(pkts, dep.Observers()); err != nil {
		log.Fatal(err)
	}
	dep.Finalize()

	// 2. Each HOP signs and serves its receipts on its own listener.
	registry := vpm.KeyRegistry{}
	urls := map[vpm.HOPID]string{}
	var servers []*http.Server
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	for hop, proc := range dep.Processors {
		var seed [32]byte
		seed[0] = byte(hop)
		signer := vpm.NewBundleSigner(seed)
		srv := vpm.NewBundleServer(hop, signer)
		srv.Publish(proc.CombinedSamples(), proc.Aggs)
		registry[hop] = signer.Public()

		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		hs := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
		servers = append(servers, hs)
		go func() { _ = hs.Serve(ln) }()
		urls[hop] = "http://" + ln.Addr().String()
		fmt.Printf("HOP%-2d serving signed receipts at %s\n", hop, ln.Addr())
	}

	// 3. The verifier streams and authenticates everything: FetchEach
	// hands over one verified bundle at a time, and Ingest files its
	// receipts into the verifier's indexed store on the spot. The
	// verifier is restricted to the foreground path key, so any other
	// traffic in the bundles would be ingested but never read.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	client := &vpm.BundleClient{Registry: registry}
	v := vpm.NewVerifierFor(dep.Layout(), key)
	v.SetConfig(dep.VerifierConfig())
	fetched := 0
	for hop, url := range urls {
		err := client.FetchEach(ctx, url, hop, 0, func(b *vpm.ReceiptBundle) error {
			v.Ingest(b)
			fetched++
			return nil
		})
		if err != nil {
			log.Fatalf("streaming from HOP%d: %v", hop, err)
		}
	}
	fmt.Printf("\nstreamed and authenticated %d bundles from %d HOPs\n", fetched, len(urls))

	// 4. A forged server is rejected outright.
	var evilSeed [32]byte
	evilSeed[0] = 0xEE
	evil := vpm.NewBundleServer(4, vpm.NewBundleSigner(evilSeed))
	evil.Publish(nil, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: evil, ReadHeaderTimeout: 10 * time.Second}
	servers = append(servers, hs)
	go func() { _ = hs.Serve(ln) }()
	if _, err := client.Fetch(ctx, "http://"+ln.Addr().String(), 4, 0); err != nil {
		fmt.Printf("forged HOP4 server rejected as expected: %v\n", err)
	} else {
		log.Fatal("forged server was accepted — signature verification broken")
	}

	// 5. Verification proceeds on the authenticated receipts.
	rep, err := v.DomainReport("X", vpm.DefaultQuantiles, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nX's loss from authenticated receipts: %.2f%% over %d aggregates\n",
		rep.Loss.Rate()*100, len(rep.Loss.Pairs))
	for _, lv := range v.VerifyAllLinks() {
		fmt.Printf("  %v\n", lv)
	}
}
