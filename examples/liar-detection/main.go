// Liar detection: the verifiability arguments of §3.1 and §4, acted
// out.
//
// Domain X drops 20% of the traffic it carries. Three stories run on
// identical traffic:
//
//  1. X reports honestly: its loss is computed exactly; all links are
//     consistent.
//  2. X lies (blame shift): it fabricates egress receipts claiming it
//     delivered everything. Its own numbers look perfect — but the X-N
//     link lights up with inconsistencies, exposing X to the neighbor
//     it implicated.
//  3. X lies and N covers (collusion): the X-N link goes quiet, but
//     the missing packets now appear to vanish inside N — the colluder
//     absorbs the blame, exactly the §3.1 incentive argument.
//
// Run with: go run ./examples/liar-detection
package main

import (
	"fmt"
	"log"

	"vpm"
)

func main() {
	// Shared world: Figure 1, X drops 20%.
	traceCfg := vpm.TraceConfig{
		Seed:       31,
		DurationNS: int64(500e6),
		Paths:      []vpm.TracePathSpec{vpm.DefaultTracePath(100000)},
	}
	pkts, err := vpm.GenerateTrace(traceCfg)
	if err != nil {
		log.Fatal(err)
	}
	key := vpm.PathKey{Src: traceCfg.Paths[0].SrcPrefix, Dst: traceCfg.Paths[0].DstPrefix}

	path := vpm.Fig1Path(41)
	xi := path.DomainIndex("X")
	loss, err := vpm.GilbertElliottLoss(0.20, 8, 43)
	if err != nil {
		log.Fatal(err)
	}
	path.Domains[xi].Loss = loss

	dep, err := vpm.NewDeployment(path, traceCfg.Table(), vpm.DefaultDeployConfig())
	if err != nil {
		log.Fatal(err)
	}
	truth, err := path.Run(pkts, dep.Observers())
	if err != nil {
		log.Fatal(err)
	}
	dep.Finalize()
	xTruth, _ := truth.DomainByName("X")
	fmt.Printf("ground truth: X dropped %d of %d packets (%.1f%%)\n\n",
		xTruth.DroppedInside, xTruth.In, xTruth.LossRate()*100)

	honest(dep, key)
	blameShift(dep, path, key)
	coverUp(dep, path, key, xTruth.DroppedInside)
}

func honest(dep *vpm.Deployment, key vpm.PathKey) {
	fmt.Println("=== story 1: X reports honestly ===")
	v := dep.NewVerifier(key)
	rep, err := v.DomainReport("X", vpm.DefaultQuantiles, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  X's receipts show %.1f%% loss — the truth, computed exactly\n", rep.Loss.Rate()*100)
	for _, lv := range v.VerifyAllLinks() {
		fmt.Printf("  %v\n", lv)
	}
	fmt.Println()
}

// liarVerifier rebuilds a verifier with X's egress receipts replaced
// by fabrications, and (optionally) N's ingress receipts replaced by
// cover-ups.
func liarVerifier(dep *vpm.Deployment, path *vpm.Path, key vpm.PathKey, cover bool) *vpm.Verifier {
	v := vpm.NewVerifier(dep.Layout())
	v.SetConfig(dep.VerifierConfig())
	var xInSamples vpm.SampleReceipt
	var xInAggs []vpm.AggReceipt
	for hop, proc := range dep.Processors {
		if hop == 5 || (cover && hop == 6) {
			continue // replaced below
		}
		for _, s := range proc.CombinedSamples() {
			if s.Path.Key == key {
				v.AddSampleReceipt(hop, s)
				if hop == 4 {
					xInSamples = s
				}
			}
		}
		var aggs []vpm.AggReceipt
		for _, a := range proc.Aggs {
			if a.Path.Key == key {
				aggs = append(aggs, a)
			}
		}
		v.AddAggReceipts(hop, aggs)
		if hop == 4 {
			xInAggs = aggs
		}
	}
	egressPath := path.PathIDFor(vpm.PathID{Key: key}, path.DomainIndex("X"), false)
	fs, fa := vpm.FabricateDelivery(xInSamples, xInAggs, egressPath, 500_000)
	v.AddSampleReceipt(5, fs)
	v.AddAggReceipts(5, fa)
	if cover {
		nIngress := path.PathIDFor(vpm.PathID{Key: key}, path.DomainIndex("N"), true)
		v.AddSampleReceipt(6, vpm.CoverUpReceipt(fs, nIngress, 1_000_000))
		v.AddAggReceipts(6, vpm.CoverUpAggs(fa, nIngress, 1_000_000))
	}
	return v
}

func blameShift(dep *vpm.Deployment, path *vpm.Path, key vpm.PathKey) {
	fmt.Println("=== story 2: X fabricates delivery receipts ===")
	v := liarVerifier(dep, path, key, false)
	rep, err := v.DomainReport("X", vpm.DefaultQuantiles, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  X's forged receipts show %.1f%% loss — looks perfect\n", rep.Loss.Rate()*100)
	for _, lv := range v.VerifyAllLinks() {
		fmt.Printf("  %v\n", lv)
	}
	fmt.Println("  -> the X-N inconsistencies expose X to N: either the link is broken, or X lied")
	fmt.Println()
}

func coverUp(dep *vpm.Deployment, path *vpm.Path, key vpm.PathKey, trueDrops uint64) {
	fmt.Println("=== story 3: N colludes and covers X's lie ===")
	v := liarVerifier(dep, path, key, true)
	for _, lv := range v.VerifyAllLinks() {
		fmt.Printf("  %v\n", lv)
	}
	nRep, err := v.DomainReport("N", vpm.DefaultQuantiles, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  -> links are quiet, but N now shows %d lost packets (X actually dropped %d):\n",
		nRep.Loss.Lost, trueDrops)
	fmt.Println("     covering for a liar means taking the blame yourself (§3.1)")
}
