// Tunability: the paper's third design requirement (§2.2), swept.
//
// Each domain chooses its own sampling and aggregation rates — its
// cost/quality trade-off — without any inter-domain coordination.
// This example sweeps domain X's sampling rate and prints, side by
// side, what X pays (receipt bytes, temp-buffer footprint) and what
// everyone gets (delay-estimation accuracy). It then shows the
// "different neighbors, different budgets" case: X at 1%, N at 0.1%,
// still mutually consistent thanks to the subset property.
//
// Run with: go run ./examples/tunability
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"vpm"
)

func main() {
	fmt.Println("sweep: X's sampling rate vs cost and estimation quality")
	fmt.Println("rate     samples   receiptKB   tempbuf(pkts)   p90 err (ms)")
	for _, rate := range []float64{0.05, 0.01, 0.005, 0.001} {
		run(rate)
	}
	asymmetric()
}

func run(sampleRate float64) {
	traceCfg := vpm.TraceConfig{
		Seed:       61,
		DurationNS: int64(1e9),
		Paths:      []vpm.TracePathSpec{vpm.DefaultTracePath(100000)},
	}
	pkts, err := vpm.GenerateTrace(traceCfg)
	if err != nil {
		log.Fatal(err)
	}
	key := vpm.PathKey{Src: traceCfg.Paths[0].SrcPrefix, Dst: traceCfg.Paths[0].DstPrefix}
	path := vpm.Fig1Path(67)
	queue, err := vpm.NewCongestionQueue(vpm.BurstyUDPScenario(71))
	if err != nil {
		log.Fatal(err)
	}
	path.Domains[path.DomainIndex("X")].Delay = queue

	cfg := vpm.DefaultDeployConfig()
	cfg.PerDomain = map[string]vpm.Tuning{
		"X": {SampleRate: sampleRate, AggRate: cfg.Default.AggRate},
	}
	dep, err := vpm.NewDeployment(path, traceCfg.Table(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	truth, err := path.Run(pkts, dep.Observers())
	if err != nil {
		log.Fatal(err)
	}
	dep.Finalize()

	v := dep.NewVerifier(key)
	delays := v.DelaysBetween(4, 5)
	xTruth, _ := truth.DomainByName("X")

	// X's p90 as estimated from receipts vs ground truth.
	var errMS float64 = math.NaN()
	if len(delays) > 0 {
		est, err := vpm.EstimateQuantile(delays, 0.9, 0.95)
		if err == nil {
			errMS = math.Abs(est.Point-trueQuantile(xTruth.TrueDelaysNS, 0.9)) / 1e6
		}
	}
	// X's cost: receipt bytes from its two HOPs, temp-buffer peak.
	cost := dep.Processors[4].ReceiptBytes() + dep.Processors[5].ReceiptBytes()
	mem := dep.Collectors[4].Memory()
	fmt.Printf("%5.2g%%  %8d   %9.1f   %13d   %10.3f\n",
		sampleRate*100, len(delays), float64(cost)/1024,
		mem.TempBufferPeakEntries, errMS)
}

func trueQuantile(xs []float64, q float64) float64 {
	c := append([]float64{}, xs...)
	sort.Float64s(c)
	pos := q * float64(len(c)-1)
	lo := int(pos)
	if lo+1 >= len(c) {
		return c[len(c)-1]
	}
	frac := pos - float64(lo)
	return c[lo]*(1-frac) + c[lo+1]*frac
}

func asymmetric() {
	fmt.Println("\nasymmetric tuning: X at 1%, N at 0.1% — no false alarms")
	traceCfg := vpm.TraceConfig{
		Seed:       73,
		DurationNS: int64(500e6),
		Paths:      []vpm.TracePathSpec{vpm.DefaultTracePath(100000)},
	}
	pkts, err := vpm.GenerateTrace(traceCfg)
	if err != nil {
		log.Fatal(err)
	}
	key := vpm.PathKey{Src: traceCfg.Paths[0].SrcPrefix, Dst: traceCfg.Paths[0].DstPrefix}
	path := vpm.Fig1Path(79)
	cfg := vpm.DefaultDeployConfig()
	cfg.PerDomain = map[string]vpm.Tuning{
		"X": {SampleRate: 0.01, AggRate: cfg.Default.AggRate},
		"N": {SampleRate: 0.001, AggRate: cfg.Default.AggRate},
	}
	dep, err := vpm.NewDeployment(path, traceCfg.Table(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := path.Run(pkts, dep.Observers()); err != nil {
		log.Fatal(err)
	}
	dep.Finalize()
	v := dep.NewVerifier(key)
	for _, lv := range v.VerifyAllLinks() {
		fmt.Printf("  %v\n", lv)
	}
	fmt.Println("  (the X-N link matches fewer samples — N's choice — but stays consistent)")
}
