// Quickstart: the paper's running example end to end.
//
// Domain S sends one second of traffic (100k packets/second) to domain
// D across transit domains L, X and N (Figure 1). X is congested by a
// bursty UDP flow and drops 10% of the traffic. Every domain deploys
// VPM with default tuning; afterwards a verifier — any domain on the
// path — estimates each transit domain's loss and delay from the
// receipts and checks every inter-domain link for consistency.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vpm"
)

func main() {
	// 1. Workload: one origin-prefix path at 100k packets/second.
	traceCfg := vpm.TraceConfig{
		Seed:       1,
		DurationNS: int64(1e9),
		Paths:      []vpm.TracePathSpec{vpm.DefaultTracePath(100000)},
	}
	pkts, err := vpm.GenerateTrace(traceCfg)
	if err != nil {
		log.Fatal(err)
	}
	key := vpm.PathKey{Src: traceCfg.Paths[0].SrcPrefix, Dst: traceCfg.Paths[0].DstPrefix}
	fmt.Printf("generated %d packets on path %v\n", len(pkts), key)

	// 2. Topology: Figure 1, with congestion and loss inside X.
	path := vpm.Fig1Path(7)
	xi := path.DomainIndex("X")
	queue, err := vpm.NewCongestionQueue(vpm.BurstyUDPScenario(3))
	if err != nil {
		log.Fatal(err)
	}
	path.Domains[xi].Delay = queue
	loss, err := vpm.GilbertElliottLoss(0.10, 8, 5)
	if err != nil {
		log.Fatal(err)
	}
	path.Domains[xi].Loss = loss

	// 3. Deploy VPM on every HOP and run the traffic. By default each
	// HOP's collector is sharded across GOMAXPROCS cores
	// (DeployConfig.Shards; set it to 1 to force the serial
	// collector). Sharded and serial deployments emit identical
	// receipts, so it is purely a throughput knob.
	dep, err := vpm.NewDeployment(path, traceCfg.Table(), vpm.DefaultDeployConfig())
	if err != nil {
		log.Fatal(err)
	}
	truth, err := path.Run(pkts, dep.Observers())
	if err != nil {
		log.Fatal(err)
	}
	dep.Finalize()

	// 4. Verify: estimate each domain's performance from receipts.
	v := dep.NewVerifier(key)
	fmt.Println("\ndomain   actual loss   estimated loss   estimated delay quantiles")
	for _, name := range []string{"L", "X", "N"} {
		t, _ := truth.DomainByName(name)
		rep, err := v.DomainReport(name, vpm.DefaultQuantiles, 0.95)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %10.3f%% %15.3f%%  ", name, t.LossRate()*100, rep.Loss.Rate()*100)
		for _, e := range rep.DelayEstimates {
			fmt.Printf(" p%.0f=%.2fms", e.Q*100, e.Point/1e6)
		}
		fmt.Println()
	}

	// 5. Consistency: every inter-domain link must check out.
	fmt.Println("\nlink verdicts:")
	for _, lv := range v.VerifyAllLinks() {
		fmt.Printf("  %v\n", lv)
	}
}
